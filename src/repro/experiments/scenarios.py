"""Default simulation setup of §6 (Tables 2–4) and random topologies.

The simulation area is a 40 m × 40 m square with two obstacles
(Fig. 10(a) — the paper does not give the obstacle coordinates, so we use a
rectangle and a triangle of comparable footprint near the middle of the
area).  Charger/device types and the per-pair power coefficients follow
Tables 2–4 exactly.  Initial cardinalities are (1, 2, 3) chargers for types
1–3 and (4, 3, 2, 1) devices for types 1–4; the default simulation uses 3×
the charger counts and 4× the device counts, ``Pth = 0.05`` and ``ε = 0.15``
(§6).
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import TWO_PI, Polygon, rectangle
from ..model import ChargerType, CoefficientTable, Device, DeviceType, PairCoefficients, Scenario

__all__ = [
    "DEFAULT_BOUNDS",
    "DEFAULT_EPS",
    "DEFAULT_THRESHOLD",
    "INITIAL_CHARGER_COUNTS",
    "INITIAL_DEVICE_COUNTS",
    "default_charger_types",
    "default_device_types",
    "default_coefficients",
    "default_obstacles",
    "default_budgets",
    "random_devices",
    "random_scenario",
    "small_scenario",
]

DEFAULT_BOUNDS: tuple[float, float, float, float] = (0.0, 0.0, 40.0, 40.0)
DEFAULT_THRESHOLD: float = 0.05
DEFAULT_EPS: float = 0.15

#: Table 2 + §6 initial cardinalities.
INITIAL_CHARGER_COUNTS: dict[str, int] = {"charger-1": 1, "charger-2": 2, "charger-3": 3}
#: §6 initial device cardinalities for device types 1–4.
INITIAL_DEVICE_COUNTS: tuple[int, ...] = (4, 3, 2, 1)


def default_charger_types() -> list[ChargerType]:
    """Table 2: the three heterogeneous charger types."""
    return [
        ChargerType("charger-1", math.pi / 6.0, 5.0, 10.0),
        ChargerType("charger-2", math.pi / 3.0, 3.0, 8.0),
        ChargerType("charger-3", math.pi / 2.0, 2.0, 6.0),
    ]


def default_device_types() -> list[DeviceType]:
    """Table 3: the four heterogeneous device types."""
    return [
        DeviceType("device-1", math.pi / 2.0),
        DeviceType("device-2", 2.0 * math.pi / 3.0),
        DeviceType("device-3", 3.0 * math.pi / 4.0),
        DeviceType("device-4", math.pi),
    ]


def default_coefficients() -> CoefficientTable:
    """Table 4: ``a`` rises by 30 per device type and 10 per charger type,
    with ``b = 0.4 a`` throughout."""
    entries: dict[tuple[str, str], PairCoefficients] = {}
    for ci in range(1, 4):
        for di in range(1, 5):
            a = 100.0 + 30.0 * (di - 1) + 10.0 * (ci - 1)
            entries[(f"charger-{ci}", f"device-{di}")] = PairCoefficients(a, 0.4 * a)
    return CoefficientTable(entries)


def default_obstacles() -> list[Polygon]:
    """Two obstacles of the simulation scenario (Fig. 10(a))."""
    box = rectangle(10.0, 22.0, 18.0, 28.0)
    triangle = Polygon([(24.0, 8.0), (32.0, 10.0), (27.0, 16.0)])
    return [box, triangle]


def default_budgets(multiple: int = 3) -> dict[str, int]:
    """Charger budgets at *multiple* times the initial cardinalities."""
    if multiple < 0:
        raise ValueError("multiple must be non-negative")
    return {name: count * multiple for name, count in INITIAL_CHARGER_COUNTS.items()}


def random_devices(
    rng: np.random.Generator,
    *,
    device_multiple: int = 4,
    threshold: float = DEFAULT_THRESHOLD,
    bounds: tuple[float, float, float, float] = DEFAULT_BOUNDS,
    obstacles: list[Polygon] | None = None,
    counts: tuple[int, ...] | None = None,
) -> list[Device]:
    """Random device topology: positions uniform over the free area,
    orientations uniform; infeasible draws (inside obstacles) are re-sampled
    as §6 prescribes."""
    obstacles = default_obstacles() if obstacles is None else obstacles
    counts = counts if counts is not None else tuple(c * device_multiple for c in INITIAL_DEVICE_COUNTS)
    dtypes = default_device_types()
    if len(counts) != len(dtypes):
        raise ValueError(f"need {len(dtypes)} device counts, got {len(counts)}")
    xmin, ymin, xmax, ymax = bounds
    devices: list[Device] = []
    for dt, n in zip(dtypes, counts):
        for _ in range(n):
            while True:
                p = (rng.uniform(xmin, xmax), rng.uniform(ymin, ymax))
                if not any(h.contains(p) for h in obstacles):
                    break
            devices.append(Device(p, rng.uniform(0.0, TWO_PI), dt, threshold))
    return devices


def random_scenario(
    rng: np.random.Generator,
    *,
    charger_multiple: int = 3,
    device_multiple: int = 4,
    threshold: float = DEFAULT_THRESHOLD,
    bounds: tuple[float, float, float, float] = DEFAULT_BOUNDS,
    obstacles: list[Polygon] | None = None,
    device_counts: tuple[int, ...] | None = None,
) -> Scenario:
    """One random instance of the §6 simulation setup."""
    obstacles = default_obstacles() if obstacles is None else obstacles
    devices = random_devices(
        rng,
        device_multiple=device_multiple,
        threshold=threshold,
        bounds=bounds,
        obstacles=obstacles,
        counts=device_counts,
    )
    return Scenario(
        bounds=bounds,
        devices=tuple(devices),
        obstacles=tuple(obstacles),
        charger_types=tuple(default_charger_types()),
        budgets=default_budgets(charger_multiple),
        table=default_coefficients(),
    )


def small_scenario(rng: np.random.Generator, *, num_devices: int = 6, with_obstacle: bool = True) -> Scenario:
    """A fast, downsized instance for tests: 20 m × 20 m, one obstacle,
    one charger of each type, *num_devices* devices cycling the types."""
    bounds = (0.0, 0.0, 20.0, 20.0)
    obstacles = [rectangle(8.0, 8.0, 11.0, 11.0)] if with_obstacle else []
    dtypes = default_device_types()
    devices = []
    for k in range(num_devices):
        while True:
            p = (rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0))
            if not any(h.contains(p) for h in obstacles):
                break
        devices.append(Device(p, rng.uniform(0.0, TWO_PI), dtypes[k % len(dtypes)], DEFAULT_THRESHOLD))
    return Scenario(
        bounds=bounds,
        devices=tuple(devices),
        obstacles=tuple(obstacles),
        charger_types=tuple(default_charger_types()),
        budgets={"charger-1": 1, "charger-2": 1, "charger-3": 1},
        table=default_coefficients(),
    )
