"""Formatting helpers for the reproduction harness.

The paper's figures are line plots / CDFs / bar charts; the benchmark
harness regenerates the underlying *series* and prints them as aligned text
tables (optionally CSV) so the shape comparison with the paper is direct.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = ["SeriesTable", "cdf_points", "format_percent", "headline_improvements"]


@dataclass
class SeriesTable:
    """An x-axis plus one named series per algorithm/configuration."""

    x_label: str
    x: list
    series: dict[str, list[float]] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float]) -> None:
        """Attach one named series (must match the x-axis length)."""
        vals = [float(v) for v in values]
        if len(vals) != len(self.x):
            raise ValueError(f"series {name!r} length {len(vals)} != x length {len(self.x)}")
        self.series[name] = vals

    def format(self, *, width: int = 18, precision: int = 4) -> str:
        """Aligned text table (x down the rows, series across the columns)."""
        names = list(self.series)
        width = max(width, len(self.x_label) + 2, *(len(n) + 2 for n in names)) if names else width
        out = io.StringIO()
        header = [self.x_label.ljust(width)] + [n.ljust(width) for n in names]
        out.write("".join(header).rstrip() + "\n")
        for i, xv in enumerate(self.x):
            row = [f"{xv}".ljust(width)]
            for n in names:
                row.append(f"{self.series[n][i]:.{precision}f}".ljust(width))
            out.write("".join(row).rstrip() + "\n")
        return out.getvalue()

    def to_csv(self, path: str) -> None:
        """Write the table as CSV (x first, one column per series)."""
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow([self.x_label, *self.series.keys()])
            for i, xv in enumerate(self.x):
                w.writerow([xv, *(self.series[n][i] for n in self.series)])

    def improvement_over(self, reference: str) -> dict[str, float]:
        """Mean percentage improvement of *reference* over each other series
        (the paper's "HIPO outperforms X by Y%" aggregation).

        Points where the other series is 0 are skipped to avoid division by
        zero (the paper's RPAR percentages are similarly dominated by its
        near-zero utilities).
        """
        ref = np.asarray(self.series[reference], dtype=float)
        out: dict[str, float] = {}
        for name, vals in self.series.items():
            if name == reference:
                continue
            other = np.asarray(vals, dtype=float)
            mask = other > 1e-9
            if not mask.any():
                out[name] = float("inf")
                continue
            out[name] = float(((ref[mask] - other[mask]) / other[mask]).mean() * 100.0)
        return out


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF sample points ``(sorted values, cumulative fraction)``."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return v, v
    frac = np.arange(1, v.size + 1) / v.size
    return v, frac


def format_percent(x: float) -> str:
    """Render a ratio improvement as a percent string."""
    if not np.isfinite(x):
        return "inf%"
    return f"{x:.2f}%"


def headline_improvements(tables: Sequence["SeriesTable"], *, reference: str = "HIPO") -> dict[str, float]:
    """The paper's §6 headline aggregation: mean percentage improvement of
    *reference* over each other algorithm, averaged across several sweep
    tables (the paper averages the six Fig. 11 families to report "HIPO
    outperforms ... by at least 33.49%").

    Only algorithms present in every table are aggregated; infinite
    per-table entries (an all-zero competitor) are skipped.
    """
    if not tables:
        return {}
    common = set(tables[0].series)
    for t in tables[1:]:
        common &= set(t.series)
    if reference not in common:
        raise KeyError(f"reference {reference!r} missing from some table")
    out: dict[str, float] = {}
    for name in sorted(common - {reference}):
        vals = [t.improvement_over(reference)[name] for t in tables]
        finite = [v for v in vals if np.isfinite(v)]
        out[name] = float(np.mean(finite)) if finite else float("inf")
    return out
