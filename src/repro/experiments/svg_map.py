"""SVG rendering of scenarios and placements (no plotting dependencies).

Produces self-contained SVG files equivalent to the paper's instance plots
(Fig. 10 / Fig. 24): obstacles as grey polygons, devices as dots with their
receiving sectors, chargers as arrows with translucent charging sector
rings.  Pure string generation — viewable in any browser.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..model.entities import Device, Strategy
from ..model.network import Scenario

__all__ = ["render_svg", "save_svg"]

_CHARGER_COLORS = ("#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e")


def _sector_ring_path(cx, cy, orientation, half_angle, rmin, rmax) -> str:
    """SVG path for a sector ring (annulus sector)."""
    a0, a1 = orientation - half_angle, orientation + half_angle
    large = 1 if (a1 - a0) % (2 * math.pi) > math.pi else 0
    p = []
    x0, y0 = cx + rmax * math.cos(a0), cy + rmax * math.sin(a0)
    x1, y1 = cx + rmax * math.cos(a1), cy + rmax * math.sin(a1)
    x2, y2 = cx + rmin * math.cos(a1), cy + rmin * math.sin(a1)
    x3, y3 = cx + rmin * math.cos(a0), cy + rmin * math.sin(a0)
    p.append(f"M {x0:.3f} {y0:.3f}")
    p.append(f"A {rmax:.3f} {rmax:.3f} 0 {large} 1 {x1:.3f} {y1:.3f}")
    p.append(f"L {x2:.3f} {y2:.3f}")
    p.append(f"A {rmin:.3f} {rmin:.3f} 0 {large} 0 {x3:.3f} {y3:.3f}")
    p.append("Z")
    return " ".join(p)


def render_svg(
    scenario: Scenario,
    strategies: Sequence[Strategy] = (),
    *,
    size: int = 640,
    show_receiving_areas: bool = False,
) -> str:
    """Render the scenario (and an optional placement) as an SVG document."""
    xmin, ymin, xmax, ymax = scenario.bounds
    span = max(xmax - xmin, ymax - ymin)
    scale = size / span
    w = (xmax - xmin) * scale
    h = (ymax - ymin) * scale

    def sx(x: float) -> float:
        return (x - xmin) * scale

    def sy(y: float) -> float:
        return h - (y - ymin) * scale  # SVG y grows downward

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" height="{h:.0f}" '
        f'viewBox="0 0 {w:.0f} {h:.0f}">',
        f'<rect width="{w:.0f}" height="{h:.0f}" fill="#fbfbf8" stroke="#333"/>',
    ]

    for hpoly in scenario.obstacles:
        pts = " ".join(f"{sx(x):.2f},{sy(y):.2f}" for x, y in hpoly.vertices)
        parts.append(f'<polygon points="{pts}" fill="#8a8a8a" stroke="#444" stroke-width="1"/>')

    type_color = {
        ct.name: _CHARGER_COLORS[i % len(_CHARGER_COLORS)]
        for i, ct in enumerate(scenario.charger_types)
    }

    for s in strategies:
        color = type_color.get(s.ctype.name, "#d62728")
        cx, cy = sx(s.position[0]), sy(s.position[1])
        # The charging sector ring, mirrored in screen coordinates (-theta).
        path = _sector_ring_path(
            cx, cy, -s.orientation, s.ctype.half_angle, s.ctype.dmin * scale, s.ctype.dmax * scale
        )
        parts.append(f'<path d="{path}" fill="{color}" fill-opacity="0.12" stroke="{color}" stroke-opacity="0.45"/>')
        ex = cx + 10.0 * math.cos(-s.orientation)
        ey = cy + 10.0 * math.sin(-s.orientation)
        parts.append(f'<line x1="{cx:.2f}" y1="{cy:.2f}" x2="{ex:.2f}" y2="{ey:.2f}" stroke="{color}" stroke-width="2"/>')
        parts.append(f'<rect x="{cx - 3:.2f}" y="{cy - 3:.2f}" width="6" height="6" fill="{color}"/>')

    for d in scenario.devices:
        cx, cy = sx(d.position[0]), sy(d.position[1])
        if show_receiving_areas and scenario.charger_types:
            ct = scenario.charger_types[0]
            path = _sector_ring_path(
                cx, cy, -d.orientation, d.dtype.half_angle, ct.dmin * scale, ct.dmax * scale
            )
            parts.append(f'<path d="{path}" fill="#1f77b4" fill-opacity="0.05" stroke="#1f77b4" stroke-opacity="0.2"/>')
        ex = cx + 7.0 * math.cos(-d.orientation)
        ey = cy + 7.0 * math.sin(-d.orientation)
        parts.append(f'<line x1="{cx:.2f}" y1="{cy:.2f}" x2="{ex:.2f}" y2="{ey:.2f}" stroke="#1a1a1a" stroke-width="1"/>')
        parts.append(f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="3" fill="#1a1a1a"/>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: str, scenario: Scenario, strategies: Sequence[Strategy] = (), **kw) -> None:
    """Write :func:`render_svg` output to *path*."""
    with open(path, "w") as f:
        f.write(render_svg(scenario, strategies, **kw))
