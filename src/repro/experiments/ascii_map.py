"""ASCII rendering of scenarios and placements.

The paper's Fig. 10/24 are scatter plots of devices, chargers and obstacles;
with no plotting stack available offline, we render the same information as
a character grid: ``#`` obstacle interior, ``o`` device, an arrow
(``> ^ < v``) for each placed charger pointing along its orientation, and
``*`` where a charger and a device share a cell.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..model.entities import Strategy
from ..model.network import Scenario

__all__ = ["render_scene"]

_ARROWS = ">/^\\<\\v/"  # 8 sectors of the compass, 45 degrees each


def _arrow_for(theta: float) -> str:
    sector = int(((theta + math.pi / 8.0) % (2.0 * math.pi)) / (math.pi / 4.0)) % 8
    return _ARROWS[sector]


def render_scene(
    scenario: Scenario,
    strategies: Sequence[Strategy] = (),
    *,
    width: int = 60,
    height: int = 30,
) -> str:
    """Render the scenario as a ``height``-line ASCII map."""
    xmin, ymin, xmax, ymax = scenario.bounds
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def cell(p) -> tuple[int, int]:
        cx = int((p[0] - xmin) / (xmax - xmin) * (width - 1))
        cy = int((p[1] - ymin) / (ymax - ymin) * (height - 1))
        return min(max(cx, 0), width - 1), min(max(cy, 0), height - 1)

    # Obstacles: sample the grid cells whose centers are inside.
    for r in range(height):
        y = ymin + (r + 0.5) / height * (ymax - ymin)
        row_pts = np.column_stack(
            [xmin + (np.arange(width) + 0.5) / width * (xmax - xmin), np.full(width, y)]
        )
        for h in scenario.obstacles:
            inside = h.contains_many(row_pts)
            for c in np.nonzero(inside)[0]:
                grid[r][c] = "#"

    for d in scenario.devices:
        cx, cy = cell(d.position)
        grid[cy][cx] = "o"

    for s in strategies:
        cx, cy = cell(s.position)
        grid[cy][cx] = "*" if grid[cy][cx] == "o" else _arrow_for(s.orientation)

    # y grows upward: print top row (max y) first.
    border = "+" + "-" * width + "+"
    lines = [border]
    for r in range(height - 1, -1, -1):
        lines.append("|" + "".join(grid[r]) + "|")
    lines.append(border)
    return "\n".join(lines)
