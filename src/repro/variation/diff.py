"""The differential-testing harness (``repro vary`` / ``python -m
repro.variation``).

Generates a stamped scenario corpus (:mod:`.strategies`), checks solver
invariants (:mod:`.invariants`) over it, and — on any violation — shrinks
the failing scenario (:mod:`.shrink`) and dumps a replayable repro file
(:mod:`.repro_files`).

Invariants are **rotated** round-robin across the corpus by default: each
scenario runs one invariant, so a budget of *n* scenarios costs *n* solves
(plus the invariant's own comparison solves) rather than ``n × invariants``.
Pass ``rotate=False`` to run every invariant on every scenario.

The whole run is a pure function of its :class:`DiffConfig` — the report,
including the digest over all provenance stamps, is bit-reproducible, which
is exactly what the CI smoke asserts by running twice.  ``workers > 1``
fans the invariant checks out over a process pool but keeps all report
bookkeeping (digest, rotation, shrinking, repro dumps) in the parent in
corpus order, so the report is byte-identical to a serial run.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .families import VariedScenario
from .invariants import INVARIANTS, InvariantContext, InvariantViolation, check_invariant
from .repro_files import dump_repro
from .shrink import shrink_failure
from .strategies import STRATEGIES, generate_corpus

__all__ = ["DiffConfig", "DiffReport", "Finding", "run_differential"]

#: Schema tag of the machine-readable report (``--json``).
REPORT_SCHEMA = "repro.variation.report/v1"


@dataclass(frozen=True)
class DiffConfig:
    """One differential run, fully determined by these fields.

    ``workers`` is an execution knob, not part of the run's identity: the
    report (digest included) is byte-identical for any worker count, so it
    is deliberately absent from the serialized config block.
    """

    families: tuple[str, ...]
    budget: int = 100
    seed: int = 0
    eps: float = 0.3
    strategy: str = "mixed"
    invariants: tuple[str, ...] = tuple(INVARIANTS)
    rotate: bool = True
    out_dir: str | None = None
    shrink_evals: int = 40
    workers: int = 1

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r} (known: {STRATEGIES})")
        unknown = sorted(set(self.invariants) - set(INVARIANTS))
        if unknown:
            raise ValueError(f"unknown invariant(s) {unknown} (known: {tuple(INVARIANTS)})")
        if not self.invariants:
            raise ValueError("need at least one invariant")


@dataclass(frozen=True)
class Finding:
    """One falsified invariant: the shrunk scenario + where its repro lives."""

    violation: InvariantViolation
    varied: VariedScenario
    repro_path: str | None
    shrink_evals: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "violation": self.violation.to_dict(),
            "provenance": self.varied.provenance(),
            "repro_path": self.repro_path,
            "shrink_evals": self.shrink_evals,
        }


@dataclass
class DiffReport:
    """The outcome of one differential run."""

    config: DiffConfig
    scenarios: int = 0
    distinct_scenarios: int = 0
    families_seen: dict[str, int] = field(default_factory=dict)
    checks: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    stamps_digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "config": {
                "families": list(self.config.families),
                "budget": self.config.budget,
                "seed": self.config.seed,
                "eps": self.config.eps,
                "strategy": self.config.strategy,
                "invariants": list(self.config.invariants),
                "rotate": self.config.rotate,
            },
            "scenarios": self.scenarios,
            "distinct_scenarios": self.distinct_scenarios,
            "families_seen": dict(sorted(self.families_seen.items())),
            "checks": dict(sorted(self.checks.items())),
            "violations": [f.to_dict() for f in self.findings],
            "stamps_digest": self.stamps_digest,
            "ok": self.ok,
        }

    def format(self) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"repro.variation: {self.scenarios} scenarios "
            f"({self.distinct_scenarios} distinct) across "
            f"{len(self.families_seen)} families "
            f"[seed={self.config.seed} strategy={self.config.strategy} eps={self.config.eps}]",
        ]
        fams = "  ".join(f"{name}:{n}" for name, n in sorted(self.families_seen.items()))
        lines.append(f"  families  {fams}")
        checks = "  ".join(f"{name}:{n}" for name, n in sorted(self.checks.items()))
        lines.append(f"  checks    {checks}")
        lines.append(f"  stamps    {self.stamps_digest[:16]}")
        if self.ok:
            lines.append("  OK — no invariant violations")
        else:
            lines.append(f"  {len(self.findings)} VIOLATION(S):")
            for f in self.findings:
                prov = f.varied.provenance()
                lines.append(
                    f"    [{f.violation.invariant}] {f.violation.message} "
                    f"(family={prov['family']} seed={prov['seed']})"
                )
                if f.repro_path:
                    lines.append(f"      repro: {f.repro_path}")
        return "\n".join(lines)


def _check_task(
    item: tuple[str, VariedScenario, InvariantContext],
) -> InvariantViolation | None:
    """One (invariant, scenario) check, as a process-pool task.

    Module-level so it pickles (PCK501); pure in its arguments, so the
    fan-out cannot change any result relative to a serial run.
    """
    name, varied, ctx = item
    return check_invariant(name, varied, ctx)


def _fan_out_checks(
    corpus: list[VariedScenario],
    plan: list[tuple[str, ...]],
    ctx: InvariantContext,
    workers: int,
) -> list[InvariantViolation | None]:
    """Precompute every invariant check on a process pool, in corpus order.

    ``ProcessPoolExecutor.map`` preserves input order, so the parent's
    bookkeeping loop consumes results exactly as a serial run would produce
    them.  Requires *ctx* to be picklable (the default context is).
    """
    tasks = [
        (name, varied, ctx) for varied, names in zip(corpus, plan) for name in names
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        chunksize = max(1, len(tasks) // (workers * 4))
        return list(pool.map(_check_task, tasks, chunksize=chunksize))


def run_differential(
    config: DiffConfig,
    *,
    ctx: InvariantContext | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> DiffReport:
    """Run the harness: generate, check, shrink, dump, report.

    *ctx* overrides the invariant context (the bug-injection tests pass
    one with a broken solver shim); *progress* is called as
    ``progress(done, total)`` after each scenario.  With
    ``config.workers > 1`` the checks themselves run on a process pool
    (*ctx* must then be picklable), while shrinking and repro dumps stay
    in the parent — reports are byte-identical across worker counts.
    """
    if ctx is None:
        ctx = InvariantContext(eps=config.eps)
    corpus = generate_corpus(
        config.families, budget=config.budget, seed=config.seed, strategy=config.strategy
    )
    plan: list[tuple[str, ...]] = [
        (config.invariants[i % len(config.invariants)],) if config.rotate else config.invariants
        for i in range(len(corpus))
    ]
    precomputed = (
        iter(_fan_out_checks(corpus, plan, ctx, config.workers))
        if config.workers > 1
        else None
    )
    report = DiffReport(config=config)
    report.scenarios = len(corpus)
    digest = hashlib.sha256()
    hashes: set[str] = set()
    for i, varied in enumerate(corpus):
        digest.update(varied.stamp().encode("utf-8"))
        hashes.add(varied.scenario_hash())
        report.families_seen[varied.family] = report.families_seen.get(varied.family, 0) + 1
        for name in plan[i]:
            report.checks[name] = report.checks.get(name, 0) + 1
            violation = (
                next(precomputed) if precomputed is not None else check_invariant(name, varied, ctx)
            )
            if violation is None:
                continue
            minimal, shrunk_violation, evals = shrink_failure(
                varied, name, ctx, max_evals=config.shrink_evals
            )
            if shrunk_violation is None:  # shrink lost the failure; keep the original
                minimal, shrunk_violation, evals = varied, violation, 1
            repro_path: str | None = None
            if config.out_dir is not None:
                path = Path(config.out_dir) / (
                    f"violation-{len(report.findings):03d}-{name}.json"
                )
                repro_path = str(dump_repro(path, minimal, shrunk_violation, ctx))
            report.findings.append(
                Finding(
                    violation=shrunk_violation,
                    varied=minimal,
                    repro_path=repro_path,
                    shrink_evals=evals,
                )
            )
        if progress is not None:
            progress(i + 1, len(corpus))
    report.distinct_scenarios = len(hashes)
    report.stamps_digest = digest.hexdigest()
    return report
