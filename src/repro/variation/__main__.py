"""``python -m repro.variation`` — the differential-testing CLI."""

import sys

from .cli import main

sys.exit(main(prog="python -m repro.variation"))
