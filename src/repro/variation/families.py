"""Declarative, seedable scenario families.

A :class:`ScenarioFamily` is a named parameter space plus a builder that is
a **pure function of** ``(params, seed)`` — no wall clock, no unseeded RNG,
no ambient environment reads (enforced by lint rule VAR801).  Calling
:meth:`ScenarioFamily.build` yields a :class:`VariedScenario`: the scenario
plus a reproducible provenance stamp ``(family, params, seed)`` compatible
with the ``repro.obs`` provenance blocks, so any generated instance can be
regenerated bit-for-bit from its stamp alone.

Families shipped here go well beyond the paper's §6 topology (uniform
devices, two fixed obstacles) and the cluttered family of
``experiments.generators``:

* ``cluttered``   — random star/convex obstacles + Gaussian device blobs
  (the existing generator family, parameterized);
* ``corridor``    — maze-like obstacle courses: parallel walls with doors
  on alternating sides, devices scattered through the corridors;
* ``sparse``      — duty-cycle-style sparse fields: few, well-separated
  devices in a large area under a tight charger budget (arXiv 1508.02303);
* ``kcoverage``   — k-coverage demand profiles: thresholds calibrated so a
  device needs ~k simultaneous chargers to reach utility 1 (arXiv
  1901.09129);
* ``fairness``    — fairness-stress layouts: a well-served main cluster
  plus a starved cluster walled off in a corner (arXiv 2004.08520).

Every parameter axis is a *discrete* choice tuple — grids stay enumerable
and latin-hypercube draws stay exactly reproducible.  Builders accept
off-grid values too (the adversarial mutators rely on that).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..experiments.generators import cluttered_scenario
from ..experiments.scenarios import (
    DEFAULT_THRESHOLD,
    default_budgets,
    default_charger_types,
    default_coefficients,
    default_device_types,
)
from ..geometry import TWO_PI, Polygon, rectangle
from ..io import canonical_json, canonical_scenario_hash
from ..model import Device, Scenario

__all__ = [
    "FAMILIES",
    "ParamSpec",
    "ScenarioFamily",
    "VariedScenario",
    "family_names",
    "get_family",
    "register_family",
]


@dataclass(frozen=True)
class ParamSpec:
    """One discrete parameter axis of a family's parameter space."""

    name: str
    choices: tuple[Any, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"parameter {self.name!r} needs at least one choice")


@dataclass(frozen=True)
class VariedScenario:
    """A generated scenario with its reproducible provenance stamp.

    ``(family, params, seed)`` regenerates the scenario exactly (builders
    are pure); ``mutations`` records any adversarial edits applied after
    the build, in order, so mutated instances stay attributable too.
    """

    family: str
    params: dict[str, Any]
    seed: int
    scenario: Scenario
    mutations: tuple[str, ...] = ()

    def scenario_hash(self) -> str:
        """Content address of the generated scenario (repro.io canonical)."""
        return canonical_scenario_hash(self.scenario)

    def provenance(self) -> dict[str, Any]:
        """The provenance stamp: plain JSON types, deterministic order."""
        return {
            "family": self.family,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "seed": self.seed,
            "mutations": list(self.mutations),
            "scenario_hash": self.scenario_hash(),
        }

    def stamp(self) -> str:
        """Canonical one-line JSON of :meth:`provenance` (diffable)."""
        return canonical_json(self.provenance())

    def with_scenario(self, scenario: Scenario, mutation: str) -> "VariedScenario":
        """A mutated copy: same stamp lineage plus one recorded mutation."""
        return VariedScenario(
            family=self.family,
            params=dict(self.params),
            seed=self.seed,
            scenario=scenario,
            mutations=self.mutations + (mutation,),
        )


def _family_stream(name: str, seed: int) -> np.random.Generator:
    """An RNG stream independent across families for equal seeds."""
    salt = int.from_bytes(hashlib.sha256(name.encode("utf-8")).digest()[:8], "little")
    return np.random.default_rng(np.random.SeedSequence((salt, int(seed))))


@dataclass(frozen=True)
class ScenarioFamily:
    """A named, seedable parameter space over scenarios."""

    name: str
    description: str
    params: tuple[ParamSpec, ...]
    builder: Callable[[dict[str, Any], np.random.Generator], Scenario] = field(repr=False)

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def spec(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"family {self.name!r} has no parameter {name!r}")

    def default_params(self) -> dict[str, Any]:
        """The first choice of every axis (the family's anchor case)."""
        return {p.name: p.choices[0] for p in self.params}

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged with *params*; unknown names raise ``KeyError``."""
        known = set(self.param_names())
        unknown = sorted(set(params) - known)
        if unknown:
            raise KeyError(f"family {self.name!r} has no parameter(s) {unknown}")
        merged = self.default_params()
        merged.update(params)
        return merged

    def build(self, params: Mapping[str, Any] | None = None, *, seed: int = 0) -> VariedScenario:
        """Generate one instance — a pure function of ``(params, seed)``."""
        merged = self.validate_params(params or {})
        rng = _family_stream(self.name, seed)
        scenario = self.builder(merged, rng)
        return VariedScenario(family=self.name, params=merged, seed=int(seed), scenario=scenario)


#: Registry of every known family, in registration order.
FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add *family* to the registry (replacing any same-named one)."""
    FAMILIES[family.name] = family
    return family


def family_names() -> list[str]:
    """Registered family names, in registration order."""
    return list(FAMILIES)


def get_family(name: str) -> ScenarioFamily:
    """Look up a registered family; unknown names raise with the catalog."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(FAMILIES)
        raise KeyError(f"unknown scenario family {name!r} (registered: {known})") from None


# ---------------------------------------------------------------------------
# shared building blocks


def _free_point(
    rng: np.random.Generator,
    bounds: tuple[float, float, float, float],
    obstacles: tuple[Polygon, ...],
    *,
    margin: float = 0.0,
) -> tuple[float, float]:
    """Uniform point in the (margin-shrunk) region outside all obstacles."""
    xmin, ymin, xmax, ymax = bounds
    for _ in range(10_000):
        p = (
            float(rng.uniform(xmin + margin, xmax - margin)),
            float(rng.uniform(ymin + margin, ymax - margin)),
        )
        if not any(h.contains(p) for h in obstacles):
            return p
    raise RuntimeError("could not sample a free point; obstacles fill the region")


def _devices_at(
    rng: np.random.Generator,
    points: list[tuple[float, float]],
    *,
    threshold: float,
) -> tuple[Device, ...]:
    """Devices at *points* with random orientations, cycling the Table 3 types."""
    dtypes = default_device_types()
    return tuple(
        Device(p, float(rng.uniform(0.0, TWO_PI)), dtypes[k % len(dtypes)], threshold)
        for k, p in enumerate(points)
    )


def _assemble(
    bounds: tuple[float, float, float, float],
    devices: tuple[Device, ...],
    obstacles: tuple[Polygon, ...],
    budgets: dict[str, int],
) -> Scenario:
    return Scenario(
        bounds=bounds,
        devices=devices,
        obstacles=obstacles,
        charger_types=tuple(default_charger_types()),
        budgets=budgets,
        table=default_coefficients(),
    )


# ---------------------------------------------------------------------------
# family: cluttered (the existing generator family, parameterized)


def _build_cluttered(params: dict[str, Any], rng: np.random.Generator) -> Scenario:
    size = float(params["size"])
    return cluttered_scenario(
        rng,
        num_obstacles=int(params["num_obstacles"]),
        clusters=int(params["clusters"]),
        per_cluster=int(params["per_cluster"]),
        charger_multiple=int(params["charger_multiple"]),
        bounds=(0.0, 0.0, size, size),
        threshold=float(params["threshold"]),
    )


register_family(
    ScenarioFamily(
        name="cluttered",
        description="random star/convex obstacles + clustered device blobs",
        params=(
            ParamSpec("size", (24.0, 18.0, 32.0), "square field edge length (m)"),
            ParamSpec("num_obstacles", (3, 2, 5), "random obstacle count"),
            ParamSpec("clusters", (2, 3), "device hotspot count"),
            ParamSpec("per_cluster", (2, 3), "devices per hotspot"),
            ParamSpec("charger_multiple", (1, 2), "budget multiple of Table 2 counts"),
            ParamSpec("threshold", (DEFAULT_THRESHOLD,), "device power threshold"),
        ),
        builder=_build_cluttered,
    )
)


# ---------------------------------------------------------------------------
# family: corridor (maze-like obstacle courses)


def _build_corridor(params: dict[str, Any], rng: np.random.Generator) -> Scenario:
    size = float(params["size"])
    walls = int(params["walls"])
    gap = float(params["gap"])
    n_devices = int(params["devices"])
    thickness = 1.0
    bounds = (0.0, 0.0, size, size)
    obstacles: list[Polygon] = []
    # Vertical walls at equal spacing; each leaves a door of height *gap*
    # alternating between the bottom and the top of the field, so the free
    # space is one serpentine corridor.
    for i in range(walls):
        x = size * (i + 1) / (walls + 1) - thickness / 2.0
        if i % 2 == 0:
            obstacles.append(rectangle(x, gap, x + thickness, size))
        else:
            obstacles.append(rectangle(x, 0.0, x + thickness, size - gap))
    obs = tuple(obstacles)
    points = [_free_point(rng, bounds, obs, margin=0.5) for _ in range(n_devices)]
    devices = _devices_at(rng, points, threshold=float(params["threshold"]))
    budgets = default_budgets(int(params["charger_multiple"]))
    return _assemble(bounds, devices, obs, budgets)


register_family(
    ScenarioFamily(
        name="corridor",
        description="serpentine corridor courses: parallel walls with alternating doors",
        params=(
            ParamSpec("size", (20.0, 28.0), "square field edge length (m)"),
            ParamSpec("walls", (2, 3, 4), "number of internal walls"),
            ParamSpec("gap", (3.0, 4.5), "door height left by each wall (m)"),
            ParamSpec("devices", (5, 3, 8), "device count"),
            ParamSpec("charger_multiple", (1, 2), "budget multiple of Table 2 counts"),
            ParamSpec("threshold", (DEFAULT_THRESHOLD,), "device power threshold"),
        ),
        builder=_build_corridor,
    )
)


# ---------------------------------------------------------------------------
# family: sparse (duty-cycle-style sparse fields)


def _build_sparse(params: dict[str, Any], rng: np.random.Generator) -> Scenario:
    size = float(params["size"])
    n_devices = int(params["devices"])
    min_sep = float(params["min_sep"])
    bounds = (0.0, 0.0, size, size)
    obstacles: tuple[Polygon, ...] = ()
    if int(params["with_obstacle"]):
        c = size / 2.0
        obstacles = (rectangle(c - 1.5, c - 1.5, c + 1.5, c + 1.5),)
    # Poisson-disk-style spacing: rejection-sample until every pair is at
    # least min_sep apart (relaxing the separation if the draw budget runs
    # out keeps the builder total for any parameter combination).
    points: list[tuple[float, float]] = []
    sep = min_sep
    attempts = 0
    while len(points) < n_devices:
        p = _free_point(rng, bounds, obstacles, margin=0.5)
        attempts += 1
        if all(math.hypot(p[0] - q[0], p[1] - q[1]) >= sep for q in points):
            points.append(p)
        elif attempts > 200 * n_devices:
            sep *= 0.5
            attempts = 0
    devices = _devices_at(rng, points, threshold=float(params["threshold"]))
    budgets = default_budgets(int(params["charger_multiple"]))
    return _assemble(bounds, devices, obstacles, budgets)


register_family(
    ScenarioFamily(
        name="sparse",
        description="duty-cycle-style sparse fields: few, well-separated devices",
        params=(
            ParamSpec("size", (30.0, 40.0), "square field edge length (m)"),
            ParamSpec("devices", (4, 6, 8), "device count"),
            ParamSpec("min_sep", (6.0, 9.0), "minimum device separation (m)"),
            ParamSpec("with_obstacle", (0, 1), "place one central obstacle"),
            ParamSpec("charger_multiple", (1,), "budget multiple of Table 2 counts"),
            ParamSpec("threshold", (0.02, DEFAULT_THRESHOLD), "device power threshold"),
        ),
        builder=_build_sparse,
    )
)


# ---------------------------------------------------------------------------
# family: kcoverage (k-coverage demand profiles)


def _kcoverage_threshold(k: int) -> float:
    """A threshold needing ~k simultaneous mid-range chargers to satisfy.

    Reference power: the charger-3/device-1 pairing at the middle of the
    charger-3 ring — ``a / (d + b)^2`` with Table 2/4 values, a pure
    arithmetic function of the hardware defaults.
    """
    ct = default_charger_types()[2]
    a = 100.0 + 10.0 * 2  # charger-3 / device-1 coefficient (Table 4)
    b = 0.4 * a
    d = (ct.dmin + ct.dmax) / 2.0
    return k * a / (d + b) ** 2


def _build_kcoverage(params: dict[str, Any], rng: np.random.Generator) -> Scenario:
    size = float(params["size"])
    k = int(params["k"])
    n_devices = int(params["devices"])
    bounds = (0.0, 0.0, size, size)
    obstacles: tuple[Polygon, ...] = ()
    if int(params["with_obstacle"]):
        obstacles = (rectangle(size * 0.55, size * 0.2, size * 0.7, size * 0.45),)
    # A demand hotspot: devices in a tight blob so k-coverage forces several
    # chargers to stack their sectors on the same region.
    cx = float(rng.uniform(size * 0.3, size * 0.7))
    cy = float(rng.uniform(size * 0.3, size * 0.7))
    points: list[tuple[float, float]] = []
    while len(points) < n_devices:
        p = (float(rng.normal(cx, size * 0.08)), float(rng.normal(cy, size * 0.08)))
        if (
            bounds[0] + 0.5 <= p[0] <= bounds[2] - 0.5
            and bounds[1] + 0.5 <= p[1] <= bounds[3] - 0.5
            and not any(h.contains(p) for h in obstacles)
        ):
            points.append(p)
    devices = _devices_at(rng, points, threshold=_kcoverage_threshold(k))
    # Budgets scale with k so satisfying the stacked demand stays feasible.
    budgets = {name: count * k for name, count in default_budgets(1).items()}
    return _assemble(bounds, devices, obstacles, budgets)


register_family(
    ScenarioFamily(
        name="kcoverage",
        description="k-coverage demand: thresholds needing ~k stacked chargers",
        params=(
            ParamSpec("k", (2, 1, 3), "coverage multiplicity"),
            ParamSpec("devices", (4, 6), "device count"),
            ParamSpec("size", (18.0, 24.0), "square field edge length (m)"),
            ParamSpec("with_obstacle", (0, 1), "place one obstacle near the hotspot"),
        ),
        builder=_build_kcoverage,
    )
)


# ---------------------------------------------------------------------------
# family: fairness (one starved cluster)


def _build_fairness(params: dict[str, Any], rng: np.random.Generator) -> Scenario:
    size = float(params["size"])
    n_main = int(params["main_devices"])
    n_starved = int(params["starved_devices"])
    wall = float(params["wall_len"])
    bounds = (0.0, 0.0, size, size)
    # An L-shaped wall sealing off the far corner except for a narrow slit:
    # devices behind it are hard to serve, stressing fairness objectives.
    corner = size
    thickness = 1.0
    obstacles = (
        rectangle(corner - wall, corner - wall - thickness, corner - 1.5, corner - wall),
        rectangle(corner - wall - thickness, corner - wall, corner - wall, corner - 1.5),
    )
    main_pts: list[tuple[float, float]] = []
    while len(main_pts) < n_main:
        p = (
            float(rng.normal(size * 0.35, size * 0.12)),
            float(rng.normal(size * 0.35, size * 0.12)),
        )
        if 0.5 <= p[0] <= size - 0.5 and 0.5 <= p[1] <= size - 0.5 and not any(
            h.contains(p) for h in obstacles
        ):
            main_pts.append(p)
    starved_pts: list[tuple[float, float]] = []
    lo = corner - wall + thickness
    while len(starved_pts) < n_starved:
        p = (float(rng.uniform(lo, size - 0.5)), float(rng.uniform(lo, size - 0.5)))
        if not any(h.contains(p) for h in obstacles):
            starved_pts.append(p)
    devices = _devices_at(
        rng, main_pts + starved_pts, threshold=float(params["threshold"])
    )
    budgets = default_budgets(int(params["charger_multiple"]))
    return _assemble(bounds, devices, obstacles, budgets)


register_family(
    ScenarioFamily(
        name="fairness",
        description="fairness stress: a served main cluster + a walled-off starved cluster",
        params=(
            ParamSpec("size", (22.0, 28.0), "square field edge length (m)"),
            ParamSpec("main_devices", (5, 3), "devices in the main cluster"),
            ParamSpec("starved_devices", (2, 1), "devices behind the wall"),
            ParamSpec("wall_len", (7.0, 10.0), "length of each wall arm (m)"),
            ParamSpec("charger_multiple", (1, 2), "budget multiple of Table 2 counts"),
            ParamSpec("threshold", (DEFAULT_THRESHOLD,), "device power threshold"),
        ),
        builder=_build_fairness,
    )
)
