"""Per-scenario solver invariants for differential testing.

Each invariant is a pure check ``(varied, ctx) -> InvariantViolation | None``
over one stamped scenario.  ``None`` means *passed or not applicable*
(invariants skip themselves on scenarios outside their precondition — e.g.
the exact bound only runs where brute force is affordable); a returned
:class:`InvariantViolation` carries JSON-serializable evidence for the
replayable repro file.

The five shipped invariants:

* ``budget_monotone``  — shrinking a charger budget never *raises* the
  greedy's achieved (approximated) utility;
* ``obstacle_blocking`` — adding an obstacle never increases any single
  device's received power under a fixed placement (a theorem of the LOS
  power model);
* ``approx_bound``     — on a budget-clamped tiny sub-instance, greedy
  achieves ≥ 1/2 of the brute-force optimum of the same discrete problem
  (Theorem 4.2's selection half, checked against
  :func:`~repro.opt.submodular.exhaustive_best`);
* ``warm_cold``        — solving through a cold-then-warm candidate cache
  (PR 5) is byte-identical to solving with no cache at all;
* ``cross_impl``       — the ``numpy`` and ``pyloop`` backends, and the
  batched vs legacy per-position sweep paths, produce byte-identical
  placements and utilities.

The solver is injectable through :class:`InvariantContext` so the test
suite can plant a deliberately buggy shim and confirm the harness catches,
shrinks and replays it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..core.placement import HIPOSolution, solve_hipo
from ..core.reuse import CandidateSetCache
from ..geometry import rectangle
from ..io import canonical_json, strategies_to_list
from ..model import Scenario
from ..opt.submodular import ChargingUtilityObjective, exhaustive_best
from .families import VariedScenario
from .strategies import shrink_budget

__all__ = [
    "INVARIANTS",
    "InvariantContext",
    "InvariantViolation",
    "check_invariant",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One falsified invariant, with JSON-serializable evidence."""

    invariant: str
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "details": self.details,
        }


def _default_solver(scenario: Scenario, **kwargs: Any) -> HIPOSolution:
    return solve_hipo(scenario, **kwargs)


@dataclass
class InvariantContext:
    """Shared knobs of one differential run.

    *solver* is the system under test — ``solve_hipo`` by default, but
    injectable so the harness itself can be tested against a deliberately
    broken shim.  It must accept ``solve_hipo``'s keyword arguments.
    """

    eps: float = 0.3
    tol: float = 1e-9
    #: approx_bound brute-force caps: total budget after clamping, and the
    #: largest candidate count worth enumerating (rank ≤ budget keeps the
    #: combination count polynomial, but still bound it).
    exact_budget: int = 2
    exact_max_candidates: int = 64
    solver: Callable[..., HIPOSolution] = _default_solver

    def solve(self, scenario: Scenario, **kwargs: Any) -> HIPOSolution:
        kwargs.setdefault("eps", self.eps)
        kwargs.setdefault("workers", 1)
        return self.solver(scenario, **kwargs)


def _placement_key(solution: HIPOSolution) -> str:
    """Canonical bytes of a placement (ordering and floats normalized)."""
    return canonical_json(strategies_to_list(solution.strategies))


# ---------------------------------------------------------------------------
# invariants


def budget_monotone(varied: VariedScenario, ctx: InvariantContext) -> InvariantViolation | None:
    """Greedy utility must not rise when a charger budget shrinks."""
    chain = shrink_budget(varied)
    if not chain:
        return None
    shrunk = chain[0].scenario
    base = ctx.solve(varied.scenario)
    small = ctx.solve(shrunk)
    if small.approx_utility > base.approx_utility + ctx.tol:
        return InvariantViolation(
            "budget_monotone",
            "shrinking a budget increased the greedy utility",
            {
                "base_budgets": dict(varied.scenario.budgets),
                "shrunk_budgets": dict(shrunk.budgets),
                "base_approx_utility": float(base.approx_utility),
                "shrunk_approx_utility": float(small.approx_utility),
            },
        )
    return None


def obstacle_blocking(varied: VariedScenario, ctx: InvariantContext) -> InvariantViolation | None:
    """Adding an obstacle never increases any device's received power."""
    s = varied.scenario
    solution = ctx.solve(s)
    if not solution.strategies:
        return None
    before = s.evaluator().total_power(solution.strategies)
    # Wall off the corridor between the first placed charger and the first
    # device: the spot most likely to actually sever a sight line.
    cx, cy = solution.strategies[0].position
    dx, dy = s.devices[0].position
    mx, my = (cx + dx) / 2.0, (cy + dy) / 2.0
    wall = rectangle(mx - 0.6, my - 0.6, mx + 0.6, my + 0.6)
    blocked = replace(s, obstacles=s.obstacles + (wall,), _evaluator_cache=[])
    after = blocked.evaluator().total_power(solution.strategies)
    gained = np.flatnonzero(after > before + ctx.tol)
    if gained.size:
        j = int(gained[0])
        return InvariantViolation(
            "obstacle_blocking",
            "adding an obstacle increased a device's received power",
            {
                "device": j,
                "power_before": float(before[j]),
                "power_after": float(after[j]),
                "wall_center": [float(mx), float(my)],
            },
        )
    return None


def _clamp_budgets(scenario: Scenario, total: int) -> Scenario:
    """A copy with per-type budgets trimmed to at most *total* chargers."""
    clamped: dict[str, int] = {}
    remaining = total
    for name in scenario.budgets:
        if remaining == 0:
            break
        take = min(scenario.budgets[name], 1)
        clamped[name] = take
        remaining -= take
    return scenario.with_budgets(clamped or {next(iter(scenario.budgets)): 1})


def approx_bound(varied: VariedScenario, ctx: InvariantContext) -> InvariantViolation | None:
    """Greedy ≥ 1/2 × brute-force optimum on the same discrete instance."""
    s = varied.scenario
    if not s.budgets:
        return None
    tiny = _clamp_budgets(s, ctx.exact_budget)
    if len(tiny.devices) > 4:
        tiny = tiny.with_devices(tiny.devices[:4])
    solution = ctx.solve(tiny, keep_candidates=True)
    cs = solution.candidate_set
    if cs is None or cs.num_candidates == 0 or cs.num_candidates > ctx.exact_max_candidates:
        return None
    objective = ChargingUtilityObjective(cs.approx_power, tiny.evaluator().thresholds)
    opt = exhaustive_best(objective, cs.matroid())
    if solution.approx_utility < 0.5 * opt.value - ctx.tol:
        return InvariantViolation(
            "approx_bound",
            "greedy fell below 1/2 of the exact optimum",
            {
                "greedy_approx_utility": float(solution.approx_utility),
                "exact_optimum": float(opt.value),
                "num_candidates": int(cs.num_candidates),
                "budgets": dict(tiny.budgets),
            },
        )
    return None


def warm_cold(varied: VariedScenario, ctx: InvariantContext) -> InvariantViolation | None:
    """Cold-fill, warm-hit and cache-free solves must be byte-identical."""
    s = varied.scenario
    cache = CandidateSetCache()
    cold = ctx.solve(s, candidate_cache=cache)
    warm = ctx.solve(s, candidate_cache=cache)
    plain = ctx.solve(s)
    keys = {"cold": _placement_key(cold), "warm": _placement_key(warm), "plain": _placement_key(plain)}
    utils = {
        "cold": float(cold.utility),
        "warm": float(warm.utility),
        "plain": float(plain.utility),
    }
    if len(set(keys.values())) != 1 or len(set(utils.values())) != 1:
        return InvariantViolation(
            "warm_cold",
            "warm-start solve diverged from the cache-free solve",
            {"placements_equal": len(set(keys.values())) == 1, "utilities": utils},
        )
    return None


def cross_impl(varied: VariedScenario, ctx: InvariantContext) -> InvariantViolation | None:
    """numpy vs pyloop backends and batched vs legacy sweeps must agree."""
    s = varied.scenario
    solutions = {
        "numpy": ctx.solve(s, backend="numpy"),
        "pyloop": ctx.solve(s, backend="pyloop"),
        "numpy-unbatched": ctx.solve(s, backend="numpy", batched=False),
    }
    keys = {name: _placement_key(sol) for name, sol in solutions.items()}
    utils = {name: float(sol.approx_utility) for name, sol in solutions.items()}
    if len(set(keys.values())) != 1 or len(set(utils.values())) != 1:
        return InvariantViolation(
            "cross_impl",
            "backends/sweep paths disagreed on the placement",
            {"placements_equal": len(set(keys.values())) == 1, "approx_utilities": utils},
        )
    return None


#: Registry: invariant name → check callable, in documentation order.
INVARIANTS: dict[str, Callable[[VariedScenario, InvariantContext], InvariantViolation | None]] = {
    "budget_monotone": budget_monotone,
    "obstacle_blocking": obstacle_blocking,
    "approx_bound": approx_bound,
    "warm_cold": warm_cold,
    "cross_impl": cross_impl,
}


def check_invariant(
    name: str, varied: VariedScenario, ctx: InvariantContext
) -> InvariantViolation | None:
    """Run one named invariant; unknown names raise with the catalog."""
    try:
        fn = INVARIANTS[name]
    except KeyError:
        known = ", ".join(INVARIANTS)
        raise KeyError(f"unknown invariant {name!r} (known: {known})") from None
    return fn(varied, ctx)
