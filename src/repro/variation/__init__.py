"""Scenario-diversity engine with property-based differential testing.

The solver pipeline is deterministic, so the cheapest way to gain
confidence in it is to feed it *many, structurally different* instances
and check properties that must hold on every one.  This package does
exactly that, in three layers:

1. **families** (:mod:`.families`) — declarative, seedable scenario
   families: named parameter spaces (field size, obstacle count/shape,
   device clustering, charger mix, budgets) whose builders are pure
   functions of ``(params, seed)``.  Shipped families: ``cluttered``,
   ``corridor``, ``sparse``, ``kcoverage``, ``fairness``.
2. **strategies** (:mod:`.strategies`) — how a space is explored: full
   grids, latin-hypercube-style stratified draws, and adversarial
   mutation (nudge an obstacle until a sight line flips, shrink a budget
   until a device drops, jitter a device within free space).  Every
   produced scenario carries a reproducible ``(family, params, seed)``
   provenance stamp.
3. **differential harness** (:mod:`.diff`, ``repro vary`` /
   ``python -m repro.variation``) — per-scenario solver invariants
   (:mod:`.invariants`): budget monotonicity, obstacle blocking, the 1/2
   approximation bound vs brute force, warm-vs-cold cache byte-equality,
   and cross-backend/sweep-path byte-equality.  Violations are shrunk
   (:mod:`.shrink`) to a minimal failing scenario and dumped as a
   replayable repro file (:mod:`.repro_files`).

Everything in this package must stay a pure function of explicit inputs —
no wall clock, no unseeded RNG, no environment reads (lint rule VAR801) —
so that any reported violation replays bit-for-bit from its stamp.
"""

from .diff import DiffConfig, DiffReport, Finding, run_differential
from .families import (
    FAMILIES,
    ParamSpec,
    ScenarioFamily,
    VariedScenario,
    family_names,
    get_family,
    register_family,
)
from .invariants import INVARIANTS, InvariantContext, InvariantViolation, check_invariant
from .repro_files import REPRO_SCHEMA, dump_repro, load_repro, replay_repro
from .shrink import shrink_failure
from .strategies import STRATEGIES, case_seed, generate_corpus, grid_cases, random_cases

__all__ = [
    "DiffConfig",
    "DiffReport",
    "FAMILIES",
    "Finding",
    "INVARIANTS",
    "InvariantContext",
    "InvariantViolation",
    "ParamSpec",
    "REPRO_SCHEMA",
    "STRATEGIES",
    "ScenarioFamily",
    "VariedScenario",
    "case_seed",
    "check_invariant",
    "dump_repro",
    "family_names",
    "generate_corpus",
    "get_family",
    "grid_cases",
    "load_repro",
    "random_cases",
    "register_family",
    "replay_repro",
    "run_differential",
    "shrink_failure",
]
