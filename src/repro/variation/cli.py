"""Command-line front end: ``repro vary`` / ``python -m repro.variation``.

Exit codes: ``0`` — all checks passed (or listing mode); ``1`` — at least
one invariant violation (repro-file paths are printed); ``2`` — usage
errors (argparse).
"""

from __future__ import annotations

import argparse
import sys

from ..io import canonical_json
from .diff import DiffConfig, run_differential
from .families import FAMILIES
from .invariants import INVARIANTS, InvariantContext
from .repro_files import replay_repro
from .strategies import STRATEGIES

__all__ = ["build_parser", "main"]


def build_parser(prog: str = "repro vary") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="scenario-diversity differential testing (docs/variation.md)",
    )
    parser.add_argument(
        "--families",
        type=str,
        default="all",
        metavar="NAMES",
        help="comma-separated family names, or 'all' (default)",
    )
    parser.add_argument("--budget", type=int, default=100, help="scenarios to generate")
    parser.add_argument("--seed", type=int, default=0, help="corpus seed")
    parser.add_argument("--eps", type=float, default=0.3, help="solver eps for all checks")
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="mixed", help="exploration strategy"
    )
    parser.add_argument(
        "--invariants",
        type=str,
        default="all",
        metavar="NAMES",
        help="comma-separated invariant names, or 'all' (default)",
    )
    parser.add_argument(
        "--no-rotate",
        action="store_true",
        help="run every invariant on every scenario (default: round-robin rotation)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="vary-repros",
        metavar="DIR",
        help="directory for violation repro files (default: vary-repros)",
    )
    parser.add_argument(
        "--shrink-evals", type=int, default=40, help="solver probes allowed per shrink"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool fan-out for invariant checks (report is identical for any N)",
    )
    parser.add_argument("--json", action="store_true", help="print the machine-readable report")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    parser.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="FILE",
        help="re-run the failing check of a repro file and exit",
    )
    parser.add_argument(
        "--list-families", action="store_true", help="print the family catalog and exit"
    )
    parser.add_argument(
        "--list-invariants", action="store_true", help="print the invariant catalog and exit"
    )
    return parser


def _split(spec: str, catalog: dict) -> tuple[str, ...]:
    if spec.strip().lower() == "all":
        return tuple(catalog)
    return tuple(name.strip() for name in spec.split(",") if name.strip())


def main(argv: list[str] | None = None, prog: str = "repro vary") -> int:
    args = build_parser(prog).parse_args(argv)

    if args.list_families:
        for fam in FAMILIES.values():
            axes = ", ".join(
                f"{p.name}={list(p.choices)}" for p in fam.params
            )
            print(f"{fam.name}: {fam.description}")
            print(f"    {axes}")
        return 0
    if args.list_invariants:
        for name, fn in INVARIANTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {doc}")
        return 0

    if args.replay:
        violation = replay_repro(args.replay, ctx=InvariantContext(eps=args.eps))
        if violation is None:
            print(f"{args.replay}: check passes — the recorded violation is fixed")
            return 0
        print(f"{args.replay}: still failing [{violation.invariant}] {violation.message}")
        return 1

    try:
        config = DiffConfig(
            families=_split(args.families, FAMILIES),
            budget=args.budget,
            seed=args.seed,
            eps=args.eps,
            strategy=args.strategy,
            invariants=_split(args.invariants, INVARIANTS),
            rotate=not args.no_rotate,
            out_dir=args.out,
            shrink_evals=args.shrink_evals,
            workers=args.workers,
        )
    except (KeyError, ValueError) as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return 2

    def progress(done: int, total: int) -> None:
        if not args.quiet and (done % 50 == 0 or done == total):
            print(f"{prog}: {done}/{total} scenarios checked", file=sys.stderr)

    try:
        report = run_differential(config, progress=progress)
    except KeyError as exc:  # unknown family name surfaces here
        print(f"{prog}: {exc.args[0]}", file=sys.stderr)
        return 2

    print(canonical_json(report.to_dict()) if args.json else report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(prog="python -m repro.variation"))
