"""Variation strategies: how a family's parameter space is explored.

Three exploration modes, all pure functions of ``(family, seed)``:

* **grid** — the full cartesian product of every axis, cycled with fresh
  per-lap seeds when the case budget exceeds the grid size;
* **random** — latin-hypercube-style stratified draws: each axis's choices
  are repeated to length *n* and permuted independently, so every choice
  appears a balanced number of times while combinations vary;
* **adversarial** — grid/random base cases post-processed by mutators that
  push instances toward decision boundaries: translate an obstacle until a
  device's line of sight flips, shrink budgets one unit at a time, jitter
  a device within free space.

Every produced :class:`~repro.variation.families.VariedScenario` keeps its
``(family, params, seed)`` stamp; mutations are appended to the stamp's
``mutations`` list so even adversarial instances replay exactly.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from ..model import Scenario
from .families import FAMILIES, ScenarioFamily, VariedScenario, get_family

__all__ = [
    "STRATEGIES",
    "all_family_names",
    "case_seed",
    "generate_corpus",
    "grid_cases",
    "nudge_obstacle",
    "perturb_device",
    "random_cases",
    "shrink_budget",
]

#: Recognized exploration strategies (CLI ``--strategy`` spellings).
STRATEGIES = ("mixed", "grid", "random", "adversarial")

#: Salt folded into every per-case seed derivation ("VARY" in ASCII).
_CASE_SALT = 0x56415259


def case_seed(seed: int, index: int) -> int:
    """The scenario seed of case *index* under corpus seed *seed*.

    Derived through ``SeedSequence`` so per-case streams are independent;
    the family name is salted in separately by the family builder itself.
    """
    ss = np.random.SeedSequence((_CASE_SALT, int(seed), int(index)))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def grid_cases(family: ScenarioFamily) -> list[dict[str, Any]]:
    """The full cartesian product of the family's axes, in axis order."""
    names = family.param_names()
    combos = itertools.product(*(spec.choices for spec in family.params))
    return [dict(zip(names, combo)) for combo in combos]


def random_cases(family: ScenarioFamily, n: int, *, seed: int) -> list[dict[str, Any]]:
    """*n* latin-hypercube-style cases: balanced per-axis choice coverage.

    Each axis's choices are tiled to length *n* and permuted with an
    axis-specific stream, so marginals stay uniform while joint
    combinations vary — the categorical analogue of latin-hypercube
    sampling.
    """
    if n <= 0:
        return []
    cases: list[dict[str, Any]] = [{} for _ in range(n)]
    root = np.random.SeedSequence((_CASE_SALT, int(seed), 0xA7))
    for spec, child in zip(family.params, root.spawn(len(family.params))):
        rng = np.random.default_rng(child)
        tiled = (list(spec.choices) * math.ceil(n / len(spec.choices)))[:n]
        order = rng.permutation(n)
        for slot, pick in zip(order, tiled):
            cases[int(slot)][spec.name] = pick
    return cases


# ---------------------------------------------------------------------------
# adversarial mutators


def _with_obstacles(scenario: Scenario, obstacles: tuple) -> Scenario:
    return replace(scenario, obstacles=obstacles, _evaluator_cache=[])


def nudge_obstacle(
    varied: VariedScenario, *, step: float = 0.5, max_steps: int = 24
) -> VariedScenario | None:
    """Translate one obstacle until some device's line of sight flips.

    Probes each device's sight segment to the region center and walks the
    first obstacle toward (or, if already blocking, away from) the segment
    midpoint in *step*-sized increments until :meth:`Polygon.blocks_segment`
    changes truth value.  Returns the mutated scenario at the flip point,
    or ``None`` when no nudge within ``max_steps`` flips any pairing —
    callers fall back to the unmutated base case.
    """
    s = varied.scenario
    if not s.obstacles or not s.devices:
        return None
    xmin, ymin, xmax, ymax = s.bounds
    center = ((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
    for oi, obstacle in enumerate(s.obstacles):
        for device in s.devices:
            a = device.position
            if math.hypot(a[0] - center[0], a[1] - center[1]) < 1e-9:
                continue
            mid = ((a[0] + center[0]) / 2.0, (a[1] + center[1]) / 2.0)
            c = obstacle.centroid()
            dx, dy = mid[0] - float(c[0]), mid[1] - float(c[1])
            norm = math.hypot(dx, dy)
            if norm < 1e-9:
                continue
            dx, dy = dx / norm * step, dy / norm * step
            was_blocked = obstacle.blocks_segment(a, center)
            if was_blocked:
                dx, dy = -dx, -dy  # walk away until the sight line opens
            moved = obstacle
            for k in range(1, max_steps + 1):
                moved = moved.translated(dx, dy)
                if any(moved.contains(d.position) for d in s.devices):
                    break  # never swallow a device mid-walk
                if moved.blocks_segment(a, center) != was_blocked:
                    obstacles = s.obstacles[:oi] + (moved,) + s.obstacles[oi + 1 :]
                    tag = f"nudge_obstacle[{oi}]({k * dx:+.3f},{k * dy:+.3f})"
                    return varied.with_scenario(_with_obstacles(s, obstacles), tag)
    return None


def shrink_budget(varied: VariedScenario) -> list[VariedScenario]:
    """Progressively tighter-budget variants, one unit at a time.

    Each step decrements the largest remaining per-type budget until one
    charger is left, yielding a monotone chain of scenarios — the corpus
    the budget-monotonicity invariant bites hardest on (devices drop out
    of coverage one by one as the chain descends).
    """
    chain: list[VariedScenario] = []
    current = varied
    budgets = dict(varied.scenario.budgets)
    while sum(budgets.values()) > 1:
        name = max(budgets, key=lambda n: (budgets[n], n))
        budgets[name] -= 1
        trimmed = {n: c for n, c in budgets.items() if c > 0}
        current = current.with_scenario(
            current.scenario.with_budgets(trimmed), f"shrink_budget[{name}]"
        )
        chain.append(current)
    return chain


def perturb_device(
    varied: VariedScenario, rng: np.random.Generator, *, sigma: float = 0.6
) -> VariedScenario | None:
    """Jitter one device's position within free space (boundary stress)."""
    s = varied.scenario
    if not s.devices:
        return None
    di = int(rng.integers(len(s.devices)))
    device = s.devices[di]
    xmin, ymin, xmax, ymax = s.bounds
    for _ in range(64):
        p = (
            float(device.position[0] + rng.normal(0.0, sigma)),
            float(device.position[1] + rng.normal(0.0, sigma)),
        )
        if xmin <= p[0] <= xmax and ymin <= p[1] <= ymax and not any(
            h.contains(p) for h in s.obstacles
        ):
            devices = list(s.devices)
            devices[di] = replace(device, position=p)
            tag = f"perturb_device[{di}]({p[0]:.3f},{p[1]:.3f})"
            return varied.with_scenario(s.with_devices(devices), tag)
    return None


# ---------------------------------------------------------------------------
# corpus generation


def _mutate(varied: VariedScenario, index: int, seed: int) -> VariedScenario:
    """The deterministic adversarial post-pass for case *index*."""
    mode = index % 3
    if mode == 0:
        nudged = nudge_obstacle(varied)
        return nudged if nudged is not None else varied
    if mode == 1:
        chain = shrink_budget(varied)
        return chain[len(chain) // 2] if chain else varied
    rng = np.random.default_rng(np.random.SeedSequence((_CASE_SALT, seed, index, 0xD0)))
    perturbed = perturb_device(varied, rng)
    return perturbed if perturbed is not None else varied


def generate_corpus(
    family_names: Sequence[str],
    *,
    budget: int,
    seed: int = 0,
    strategy: str = "mixed",
) -> list[VariedScenario]:
    """Exactly *budget* stamped scenarios across *family_names*.

    Families are visited round-robin; each family explores its parameter
    space under *strategy* (``grid`` / ``random`` / ``adversarial`` /
    ``mixed``).  ``mixed`` interleaves all three: grid walk, then
    latin-hypercube draws, with every third case adversarially mutated.
    Deterministic — equal inputs yield stamp-identical corpora.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    if budget <= 0:
        return []
    families = [get_family(name) for name in family_names]
    if not families:
        raise ValueError("need at least one family")
    # Per-family case allotments (round-robin split of the budget).
    allotments = [budget // len(families)] * len(families)
    for i in range(budget % len(families)):
        allotments[i] += 1

    corpus: list[VariedScenario] = []
    for fam, count in zip(families, allotments):
        grid = grid_cases(fam)
        lhs = random_cases(fam, count, seed=seed)
        for j in range(count):
            if strategy == "grid":
                params = grid[j % len(grid)]
            elif strategy == "random":
                params = lhs[j]
            elif strategy == "adversarial":
                params = grid[j % len(grid)]
            else:  # mixed: first lap of the grid, then stratified draws
                params = grid[j] if j < len(grid) else lhs[j]
            varied = fam.build(params, seed=case_seed(seed, len(corpus)))
            if strategy == "adversarial" or (strategy == "mixed" and j % 3 == 2):
                varied = _mutate(varied, len(corpus), seed)
            corpus.append(varied)
    return corpus


def all_family_names() -> list[str]:
    """Every registered family, in registration order (CLI ``all``)."""
    return list(FAMILIES)
