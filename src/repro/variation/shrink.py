"""Failure shrinking: reduce a violating scenario to a minimal one.

A ddmin-style greedy reducer: given a scenario that falsifies an invariant,
repeatedly try structurally smaller variants — halve the device population,
drop obstacles one at a time, halve per-type budgets, drop charger types —
keeping any variant that still fails, until no reduction helps or the
evaluation budget runs out.  Every accepted reduction is recorded on the
:class:`~repro.variation.families.VariedScenario` mutation trail, so the
minimized instance still replays from its repro file alone.

Shrinking is bounded (``max_evals``) because each probe is a full solver
run; the default cap keeps worst-case shrink time near a second on the
family-sized instances the harness generates.
"""

from __future__ import annotations

from typing import Iterator

from ..model import Scenario
from .families import VariedScenario
from .invariants import InvariantContext, InvariantViolation, check_invariant

__all__ = ["shrink_failure"]


def _reductions(scenario: Scenario) -> Iterator[tuple[Scenario, str]]:
    """Candidate one-step reductions, most aggressive first."""
    n = len(scenario.devices)
    if n > 1:
        half = n // 2
        yield scenario.with_devices(scenario.devices[:half]), f"shrink:devices[:{half}]"
        yield scenario.with_devices(scenario.devices[half:]), f"shrink:devices[{half}:]"
        yield scenario.with_devices(scenario.devices[:-1]), f"shrink:devices[:{n - 1}]"
    for i in range(len(scenario.obstacles)):
        reduced = scenario.obstacles[:i] + scenario.obstacles[i + 1 :]
        yield (
            type(scenario)(
                bounds=scenario.bounds,
                devices=scenario.devices,
                obstacles=reduced,
                charger_types=scenario.charger_types,
                budgets=dict(scenario.budgets),
                table=scenario.table,
            ),
            f"shrink:drop_obstacle[{i}]",
        )
    for name, count in scenario.budgets.items():
        if count > 1:
            budgets = dict(scenario.budgets)
            budgets[name] = count // 2
            yield scenario.with_budgets(budgets), f"shrink:halve_budget[{name}]"
    if len(scenario.budgets) > 1:
        for name in scenario.budgets:
            budgets = {k: v for k, v in scenario.budgets.items() if k != name}
            yield scenario.with_budgets(budgets), f"shrink:drop_type[{name}]"


def shrink_failure(
    varied: VariedScenario,
    invariant: str,
    ctx: InvariantContext,
    *,
    max_evals: int = 40,
) -> tuple[VariedScenario, InvariantViolation | None, int]:
    """Greedily minimize a failing scenario.

    Returns ``(minimal, violation, evals)`` — the smallest variant still
    failing *invariant*, the violation it produced, and how many solver
    probes were spent.  If *varied* does not actually fail (the caller
    raced, or the failure was flaky — which stamped determinism should
    preclude), returns ``(varied, None, 1)`` unchanged.
    """
    violation = check_invariant(invariant, varied, ctx)
    evals = 1
    if violation is None:
        return varied, None, evals
    current = varied
    progress = True
    while progress and evals < max_evals:
        progress = False
        for reduced_scenario, tag in _reductions(current.scenario):
            if evals >= max_evals:
                break
            candidate = current.with_scenario(reduced_scenario, tag)
            try:
                probe = check_invariant(invariant, candidate, ctx)
            except Exception:  # reduction produced an unsolvable instance
                evals += 1
                continue
            evals += 1
            if probe is not None:
                current, violation = candidate, probe
                progress = True
                break
    return current, violation, evals
