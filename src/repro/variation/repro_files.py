"""Replayable repro files for invariant violations.

When the differential harness falsifies an invariant, it shrinks the
scenario (:mod:`.shrink`) and dumps a **repro file**: one JSON document
holding the provenance stamp, the violated invariant with its evidence,
the harness configuration, and the full serialized scenario.  The
scenario is embedded (not just the stamp) so a repro replays bit-for-bit
even if a family's builder later changes — the stamp stays as the
human-readable lineage.

Triage loop (see ``docs/variation.md``):

1. ``repro vary --replay path/to/violation.json`` re-runs exactly the
   failing check on the embedded scenario — exit 1 while the bug lives,
   exit 0 once fixed;
2. the ``provenance`` block regenerates the *unshrunk* ancestor via
   ``family.build(params, seed=seed)`` when more context is needed;
3. fixed repros graduate to regression fixtures by committing the file
   and replaying it in a test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..io import canonical_json, scenario_from_dict, scenario_to_dict
from .families import VariedScenario
from .invariants import InvariantContext, InvariantViolation, check_invariant

__all__ = ["REPRO_SCHEMA", "dump_repro", "load_repro", "replay_repro", "repro_dict"]

#: Schema tag stamped into (and required of) every repro file.
REPRO_SCHEMA = "repro.variation/v1"


def repro_dict(
    varied: VariedScenario, violation: InvariantViolation, ctx: InvariantContext
) -> dict[str, Any]:
    """The repro-file document for one violation (plain JSON types)."""
    return {
        "schema": REPRO_SCHEMA,
        "provenance": varied.provenance(),
        "violation": violation.to_dict(),
        "config": {"eps": ctx.eps, "tol": ctx.tol},
        "scenario": scenario_to_dict(varied.scenario),
    }


def dump_repro(
    path: str | Path,
    varied: VariedScenario,
    violation: InvariantViolation,
    ctx: InvariantContext,
) -> Path:
    """Write the violation's repro file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(repro_dict(varied, violation, ctx)) + "\n")
    return path


def load_repro(path: str | Path) -> dict[str, Any]:
    """Parse and schema-check a repro file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if data.get("schema") != REPRO_SCHEMA:
        raise ValueError(
            f"{path}: not a {REPRO_SCHEMA} repro file (schema={data.get('schema')!r})"
        )
    for key in ("provenance", "violation", "config", "scenario"):
        if key not in data:
            raise ValueError(f"{path}: missing required field {key!r}")
    return data


def replay_repro(
    path: str | Path, *, ctx: InvariantContext | None = None
) -> InvariantViolation | None:
    """Re-run exactly the failing check of a repro file.

    Rebuilds the embedded scenario, restores the recorded harness config
    (unless an explicit *ctx* overrides it — e.g. to inject a fixed or
    instrumented solver) and runs the recorded invariant.  Returns the
    fresh violation while the bug is alive, ``None`` once it is fixed.
    """
    data = load_repro(path)
    scenario, _ = scenario_from_dict(data["scenario"])
    prov = data["provenance"]
    varied = VariedScenario(
        family=str(prov.get("family", "replay")),
        params=dict(prov.get("params", {})),
        seed=int(prov.get("seed", 0)),
        scenario=scenario,
        mutations=tuple(prov.get("mutations", ())),
    )
    if ctx is None:
        cfg = data["config"]
        ctx = InvariantContext(eps=float(cfg.get("eps", 0.3)), tol=float(cfg.get("tol", 1e-9)))
    return check_invariant(str(data["violation"]["invariant"]), varied, ctx)
