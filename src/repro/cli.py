"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Solve one random §6 instance with HIPO and print the placement
    (optionally writing an SVG map).
``compare``
    Run all nine algorithms on one instance (Fig. 10 style).
``figure``
    Regenerate one paper figure's series (``fig11a`` … ``fig15``).
``field``
    Reproduce the §7 field experiment comparison.
``serve``
    Run the HTTP solve service (``repro.serve``): job queue, worker pool,
    content-addressed result cache.
``lint``
    Run the project static analyzer (``repro.analysis``): determinism,
    lock-discipline, numeric-hygiene and strict-typing rules.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except (ImportError, PackageNotFoundError):
        from . import __version__

        return __version__


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1 (workers, pool size)."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if n <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {n}")
    return n


FIGURES = (
    "fig11a",
    "fig11b",
    "fig11c",
    "fig11d",
    "fig11e",
    "fig11f",
    "fig12",
    "fig13",
    "fig14",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HIPO: heterogeneous wireless charger placement with obstacles",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one random instance with HIPO")
    solve.add_argument("--seed", type=int, default=42)
    solve.add_argument("--devices", type=int, default=4, help="device multiple (of 4,3,2,1)")
    solve.add_argument("--chargers", type=int, default=3, help="charger multiple (of 1,2,3)")
    solve.add_argument("--eps", type=float, default=0.15)
    solve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="process-pool workers for candidate extraction (1 = in-process)",
    )
    solve.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=("auto", "numpy", "numba", "cupy", "pyloop"),
        help="compute backend for the extraction kernels (docs/backends.md); "
        "default: auto (numba when installed, else numpy; REPRO_BACKEND "
        "env overrides). All backends give byte-identical placements.",
    )
    solve.add_argument(
        "--timings", action="store_true", help="print the per-phase timing breakdown"
    )
    solve.add_argument(
        "--json",
        action="store_true",
        help="with --timings: emit the breakdown as JSON instead of one line",
    )
    solve.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write the span trace as JSONL (schema repro.trace/v1; "
        "validate with `python -m repro.obs.validate PATH`)",
    )
    solve.add_argument(
        "--metrics",
        action="store_true",
        help="print the run report: per-phase span tree plus metric tables",
    )
    solve.add_argument(
        "--candidate-cache",
        type=str,
        default=None,
        metavar="DIR",
        help="persistent candidate-set cache directory: repeated solves of the "
        "same geometry skip extraction (docs/serving.md, 'cache tiers')",
    )
    solve.add_argument(
        "--budget-sweep",
        type=str,
        default=None,
        metavar="K1,K2,...",
        help="solve once per comma-separated budget multiplier (budgets scaled "
        "per type), reusing one extraction across all points",
    )
    solve.add_argument("--svg", type=str, default=None, help="write an SVG placement map here")
    solve.add_argument("--map", action="store_true", help="print an ASCII map")
    solve.add_argument("--save", type=str, default=None, help="save scenario + placement as JSON")
    solve.add_argument("--load", type=str, default=None, help="solve a saved scenario JSON instead")

    compare = sub.add_parser("compare", help="all nine algorithms on one instance")
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--devices", type=int, default=4)
    compare.add_argument("--chargers", type=int, default=4)

    figure = sub.add_parser("figure", help="regenerate one paper figure's series")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--repeats", type=int, default=2)
    figure.add_argument("--csv", type=str, default=None, help="also write the series as CSV")

    field = sub.add_parser("field", help="reproduce the §7 field experiment")
    field.add_argument("--svg", type=str, default=None)

    rep = sub.add_parser("report", help="generate a reproduction report directory")
    rep.add_argument("--out", type=str, default="report")
    rep.add_argument("--repeats", type=int, default=2)
    rep.add_argument(
        "--sections",
        type=str,
        default="fig10,fig11a,fig12,fig15,field",
        help="comma-separated subset of fig10,fig11a,fig12,fig15,field",
    )

    validate = sub.add_parser("validate", help="diagnose a saved scenario JSON")
    validate.add_argument("path", type=str)
    validate.add_argument("--no-reachability", action="store_true", help="skip the reachability scan")

    serve = sub.add_parser("serve", help="run the HTTP solve service (docs/serving.md)")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks an ephemeral port")
    serve.add_argument(
        "--pool-size",
        type=_positive_int,
        default=2,
        help="solver worker threads executing queued jobs",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=64,
        help="queued-job capacity; submissions beyond it get HTTP 429",
    )
    serve.add_argument(
        "--cache-size",
        type=_positive_int,
        default=256,
        help="max entries in the content-addressed result cache",
    )
    serve.add_argument(
        "--cache-bytes",
        type=_positive_int,
        default=64 * 1024 * 1024,
        help="max total bytes of cached results (LRU-evicted)",
    )
    serve.add_argument(
        "--candidate-cache-size",
        type=_positive_int,
        default=64,
        help="max entries in the candidate-set (extraction) cache tier",
    )
    serve.add_argument(
        "--candidate-cache-bytes",
        type=_positive_int,
        default=128 * 1024 * 1024,
        help="max total bytes of cached candidate sets (LRU-evicted)",
    )
    serve.add_argument(
        "--candidate-cache",
        type=str,
        default=None,
        metavar="DIR",
        help="persist the candidate tier to this directory (survives restarts)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job timeout (measured from submission)",
    )
    serve.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=("auto", "numpy", "numba", "cupy", "pyloop"),
        help="compute backend for all jobs (reported by /v1/metrics); "
        "default: auto",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress per-request log lines")

    lint = sub.add_parser(
        "lint", help="run the project static analyzer (docs/static-analysis.md)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: the repro package)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="IDS",
        help="comma-separated rule-id prefixes to run (e.g. DET,CNC201)",
    )
    lint.add_argument(
        "--ignore",
        type=str,
        default=None,
        metavar="IDS",
        help="comma-separated rule-id prefixes to skip",
    )
    lint.add_argument(
        "--strict", action="store_true", help="treat warnings as errors (exit 1 on any violation)"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    lint.add_argument(
        "--lock-graph",
        type=str,
        default=None,
        metavar="OUT",
        help="also write the repro.lockgraph/v1 JSON artifact to OUT",
    )

    vary = sub.add_parser(
        "vary", help="scenario-diversity differential testing (docs/variation.md)"
    )
    vary.add_argument(
        "--families",
        type=str,
        default="all",
        metavar="NAMES",
        help="comma-separated scenario family names, or 'all' (default)",
    )
    vary.add_argument("--budget", type=int, default=100, help="scenarios to generate")
    vary.add_argument("--seed", type=int, default=0, help="corpus seed")
    vary.add_argument("--eps", type=float, default=0.3, help="solver eps for all checks")
    vary.add_argument(
        "--strategy",
        choices=("mixed", "grid", "random", "adversarial"),
        default="mixed",
        help="exploration strategy",
    )
    vary.add_argument(
        "--invariants",
        type=str,
        default="all",
        metavar="NAMES",
        help="comma-separated invariant names, or 'all' (default)",
    )
    vary.add_argument(
        "--no-rotate",
        action="store_true",
        help="run every invariant on every scenario (default: round-robin)",
    )
    vary.add_argument(
        "--out",
        type=str,
        default="vary-repros",
        metavar="DIR",
        help="directory for violation repro files",
    )
    vary.add_argument(
        "--shrink-evals", type=int, default=40, help="solver probes allowed per shrink"
    )
    vary.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="process-pool fan-out for invariant checks (report is identical for any N)",
    )
    vary.add_argument("--json", action="store_true", help="print the machine-readable report")
    vary.add_argument("--quiet", action="store_true", help="suppress progress output")
    vary.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="FILE",
        help="re-run the failing check of a repro file and exit",
    )
    vary.add_argument(
        "--list-families", action="store_true", help="print the family catalog and exit"
    )
    vary.add_argument(
        "--list-invariants", action="store_true", help="print the invariant catalog and exit"
    )
    return parser


def _cmd_solve(args) -> int:
    from .core import solve_hipo
    from .experiments import random_scenario, render_scene

    if args.load:
        from .io import load_scenario

        scenario, _prior = load_scenario(args.load)
    else:
        scenario = random_scenario(
            np.random.default_rng(args.seed),
            charger_multiple=args.chargers,
            device_multiple=args.devices,
        )
    cache = None
    if args.candidate_cache or args.budget_sweep:
        from .core import CandidateSetCache

        cache = CandidateSetCache(directory=args.candidate_cache)
    if args.budget_sweep:
        return _solve_budget_sweep(args, scenario, cache)
    sol = solve_hipo(
        scenario,
        eps=args.eps,
        workers=args.workers,
        backend=args.backend,
        candidate_cache=cache,
    )
    solve_spans = sol.trace.find_all("solve") if sol.trace is not None else []
    backend_name = solve_spans[-1].attrs.get("backend", "auto") if solve_spans else "auto"
    print(
        f"devices={scenario.num_devices} chargers={scenario.num_chargers} "
        f"eps={args.eps} backend={backend_name}"
    )
    print(f"charging utility = {sol.utility:.4f} (approx objective {sol.approx_utility:.4f})")
    if args.timings and sol.timings is not None:
        if args.json:
            import json

            print(json.dumps(sol.timings.as_dict(), indent=2))
        else:
            print(f"timings: {sol.timings.format()}")
    if args.metrics:
        print(sol.report())
    if args.trace and sol.trace is not None:
        sol.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace}")
    for s in sol.strategies:
        print(
            f"  {s.ctype.name:<10} ({s.position[0]:6.2f}, {s.position[1]:6.2f}) "
            f"{np.degrees(s.orientation):6.1f} deg"
        )
    if args.map:
        print(render_scene(scenario, sol.strategies))
    if args.svg:
        from .experiments.svg_map import save_svg

        save_svg(args.svg, scenario, sol.strategies)
        print(f"wrote {args.svg}")
    if args.save:
        from .io import save_scenario

        save_scenario(args.save, scenario, sol.strategies)
        print(f"wrote {args.save}")
    return 0


def _solve_budget_sweep(args, scenario, cache) -> int:
    """``repro solve --budget-sweep K1,K2,...``: one extraction, many budgets."""
    import time

    from .experiments.sweeps import budget_sweep

    try:
        factors = [int(x) for x in args.budget_sweep.split(",") if x.strip()]
    except ValueError:
        print(f"--budget-sweep: expected comma-separated integers, got {args.budget_sweep!r}")
        return 2
    if not factors or any(k <= 0 for k in factors):
        print(f"--budget-sweep: expected positive multipliers, got {args.budget_sweep!r}")
        return 2
    points = [{name: n * k for name, n in scenario.budgets.items()} for k in factors]
    t0 = time.perf_counter()
    solutions = budget_sweep(
        scenario, points, eps=args.eps, candidate_cache=cache, workers=args.workers
    )
    elapsed = time.perf_counter() - t0
    print(
        f"devices={scenario.num_devices} eps={args.eps} "
        f"budget sweep over multipliers {factors}"
    )
    for budgets, k, sol in zip(points, factors, solutions):
        print(
            f"  x{k}: chargers={sum(budgets.values())} "
            f"selected={len(sol.strategies)} utility={sol.utility:.4f}"
        )
    stats = cache.stats()
    print(
        f"{len(factors)} solves in {elapsed:.3f}s — extractions paid: "
        f"{stats['misses']}, warm starts: {stats['hits']}"
    )
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import generate_report

    path = generate_report(
        args.out,
        include=[x for x in args.sections.split(",") if x],
        repeats=args.repeats,
    )
    print(f"wrote {path}")
    return 0


def _cmd_validate(args) -> int:
    from .io import load_scenario
    from .model import validate_scenario

    scenario, _strategies = load_scenario(args.path)
    report = validate_scenario(scenario, check_reachability=not args.no_reachability)
    print(report.format())
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    from .experiments import fig10_instance

    result = fig10_instance(
        seed=args.seed, charger_multiple=args.chargers, device_multiple=args.devices
    )
    print(result.format())
    return 0


def _cmd_figure(args) -> int:
    from .experiments import figures

    fn = {
        "fig11a": figures.fig11a_num_chargers,
        "fig11b": figures.fig11b_num_devices,
        "fig11c": figures.fig11c_charging_angle,
        "fig11d": figures.fig11d_receiving_angle,
        "fig11e": figures.fig11e_power_threshold,
        "fig11f": figures.fig11f_dmin,
        "fig12": figures.fig12_distributed_time,
        "fig13": figures.fig13_threshold_deltas,
        "fig14": figures.fig14_dmin_dmax_surface,
    }[args.name]
    table = fn(repeats=args.repeats)
    print(table.format())
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_field(args) -> int:
    from .experiments import field_comparison, field_scenario

    result = field_comparison()
    print(result.format())
    if args.svg:
        from .experiments.svg_map import save_svg

        save_svg(args.svg, field_scenario(), result.placements["HIPO"])
        print(f"wrote {args.svg}")
    return 0


def _cmd_serve(args) -> int:
    from .serve import run_server

    return run_server(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        queue_size=args.queue_size,
        cache_entries=args.cache_size,
        cache_bytes=args.cache_bytes,
        candidate_cache_entries=args.candidate_cache_size,
        candidate_cache_bytes=args.candidate_cache_bytes,
        candidate_cache_dir=args.candidate_cache,
        default_timeout_s=args.timeout,
        backend=args.backend,
        verbose=not args.quiet,
    )


def _cmd_lint(args) -> int:
    from .analysis import main as lint_main

    argv = list(args.paths or [])
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.strict:
        argv.append("--strict")
    if args.list_rules:
        argv.append("--list-rules")
    if args.lock_graph:
        argv += ["--lock-graph", args.lock_graph]
    return lint_main(argv, prog="repro lint")


def _cmd_vary(args) -> int:
    from .variation.cli import main as vary_main

    argv = [
        "--families", args.families,
        "--budget", str(args.budget),
        "--seed", str(args.seed),
        "--eps", str(args.eps),
        "--strategy", args.strategy,
        "--invariants", args.invariants,
        "--out", args.out,
        "--shrink-evals", str(args.shrink_evals),
        "--workers", str(args.workers),
    ]
    for flag in ("no_rotate", "json", "quiet", "list_families", "list_invariants"):
        if getattr(args, flag):
            argv.append("--" + flag.replace("_", "-"))
    if args.replay:
        argv += ["--replay", args.replay]
    return vary_main(argv, prog="repro vary")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "field": _cmd_field,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "vary": _cmd_vary,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
