"""Discussion-section extensions (§8): redeployment, deployment costs, fairness."""

from .budgeted import (
    BudgetedSolution,
    DeploymentCostModel,
    budgeted_placement,
    multi_base_travel,
    placement_cost,
)
from .fairness import (
    FairnessSolution,
    fairness_frontier,
    maxmin_placement,
    min_utility,
    proportional_fair_placement,
    utilities_of,
)
from .redeployment import (
    RedeploymentPlan,
    cost_matrix,
    minimize_max_overhead,
    minimize_total_overhead,
    redeploy,
    switching_cost,
)

__all__ = [
    "BudgetedSolution",
    "DeploymentCostModel",
    "FairnessSolution",
    "RedeploymentPlan",
    "budgeted_placement",
    "cost_matrix",
    "fairness_frontier",
    "maxmin_placement",
    "min_utility",
    "minimize_max_overhead",
    "minimize_total_overhead",
    "multi_base_travel",
    "placement_cost",
    "proportional_fair_placement",
    "redeploy",
    "switching_cost",
    "utilities_of",
]
