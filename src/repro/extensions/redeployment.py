"""Charger redeployment when the device topology changes (§8.1).

Given the per-type original strategy sets ``U_q`` and new strategy sets
``V_q`` (e.g. two HIPO solutions for the old and new topologies), each type's
transfer is a perfect matching in the complete bipartite graph with switching
overheads as weights.  Two objectives are supported:

* **minimize overall switching overhead** — one Hungarian assignment per
  type (§8.1.1);
* **minimize maximum switching overhead** — binary search over the sorted
  distinct weights for the smallest bottleneck admitting a perfect matching
  (Hall's condition, certified by Hopcroft–Karp), then a Hungarian pass
  restricted to edges under the bottleneck to also minimize the total
  (§8.1.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..model.entities import Strategy
from ..opt.matching import has_perfect_matching, hungarian

__all__ = [
    "switching_cost",
    "cost_matrix",
    "RedeploymentPlan",
    "minimize_total_overhead",
    "minimize_max_overhead",
    "redeploy",
]


def switching_cost(
    old: Strategy,
    new: Strategy,
    *,
    move_weight: float = 1.0,
    rotate_weight: float = 1.0,
) -> float:
    """Overhead of transforming *old* into *new*: weighted travel distance
    plus weighted rotation angle (both ways of consuming energy, §8.2)."""
    dx = new.position[0] - old.position[0]
    dy = new.position[1] - old.position[1]
    dist = math.hypot(dx, dy)
    dtheta = abs((new.orientation - old.orientation + math.pi) % (2.0 * math.pi) - math.pi)
    return move_weight * dist + rotate_weight * dtheta


def cost_matrix(
    old: Sequence[Strategy],
    new: Sequence[Strategy],
    *,
    cost_fn: Callable[[Strategy, Strategy], float] | None = None,
) -> np.ndarray:
    """Square switching-overhead matrix for one charger type."""
    if len(old) != len(new):
        raise ValueError("redeployment requires equal old/new strategy counts per type")
    fn = cost_fn if cost_fn is not None else switching_cost
    n = len(old)
    c = np.zeros((n, n))
    for i, u in enumerate(old):
        for j, v in enumerate(new):
            c[i, j] = fn(u, v)
    return c


@dataclass
class RedeploymentPlan:
    """A per-type assignment ``old index → new index`` with its overheads."""

    assignments: dict[str, np.ndarray]
    total_overhead: float
    max_overhead: float


def minimize_total_overhead(costs: dict[str, np.ndarray]) -> RedeploymentPlan:
    """§8.1.1: Hungarian per type; minimizes the summed switching overhead."""
    assignments: dict[str, np.ndarray] = {}
    total = 0.0
    worst = 0.0
    for name, c in costs.items():
        assignment, t = hungarian(c)
        assignments[name] = assignment
        total += t
        if len(c):
            worst = max(worst, max(float(c[i, assignment[i]]) for i in range(len(c))))
    return RedeploymentPlan(assignments, total, worst)


def minimize_max_overhead(costs: dict[str, np.ndarray]) -> RedeploymentPlan:
    """§8.1.2: minimize the bottleneck overhead, then the total.

    Step 1 binary-searches the sorted distinct weights across all types for
    the smallest threshold under which every type's bipartite graph still has
    a perfect matching.  Step 2 removes heavier edges (cost → ∞) and runs the
    Hungarian algorithm to minimize the total overhead subject to that
    bottleneck.
    """
    weights = np.unique(np.concatenate([c.ravel() for c in costs.values()]) if costs else np.zeros(0))
    if weights.size == 0:
        return RedeploymentPlan({name: np.zeros(0, dtype=int) for name in costs}, 0.0, 0.0)

    def feasible(w: float) -> bool:
        return all(has_perfect_matching(c <= w + 1e-12) for c in costs.values())

    lo, hi = 0, len(weights) - 1
    if not feasible(float(weights[hi])):
        raise ValueError("no perfect matching exists even with all edges")
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(float(weights[mid])):
            hi = mid
        else:
            lo = mid + 1
    bottleneck = float(weights[lo])

    assignments: dict[str, np.ndarray] = {}
    total = 0.0
    worst = 0.0
    for name, c in costs.items():
        restricted = np.where(c <= bottleneck + 1e-12, c, np.inf)
        assignment, t = hungarian(restricted)
        assignments[name] = assignment
        total += t
        if len(c):
            worst = max(worst, max(float(c[i, assignment[i]]) for i in range(len(c))))
    return RedeploymentPlan(assignments, total, worst)


def redeploy(
    old_by_type: dict[str, list[Strategy]],
    new_by_type: dict[str, list[Strategy]],
    *,
    objective: str = "total",
    cost_fn: Callable[[Strategy, Strategy], float] | None = None,
) -> RedeploymentPlan:
    """Plan the transfer between two placements.

    *objective* is ``"total"`` (§8.1.1) or ``"max"`` (§8.1.2).
    """
    if set(old_by_type) != set(new_by_type):
        raise ValueError("old and new placements must cover the same charger types")
    costs = {
        name: cost_matrix(old_by_type[name], new_by_type[name], cost_fn=cost_fn)
        for name in old_by_type
    }
    if objective == "total":
        return minimize_total_overhead(costs)
    if objective == "max":
        return minimize_max_overhead(costs)
    raise ValueError(f"unknown objective {objective!r}")
