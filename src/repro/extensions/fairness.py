"""Charging utility balancing (§8.3): max-min and proportional fairness.

* **Max-min fairness** (Eq. 15) maximizes the minimum per-device utility.
  No efficient approximation is known for the submodular formulation; the
  paper points to metaheuristics, so we expose SA / PSO / ACO from
  :mod:`repro.opt.heuristics` over the PDCS candidate set.
* **Proportional fairness** (Eq. 16) maximizes ``Σ_j log(U_j + 1)`` — still
  a monotone submodular objective after PDCS extraction, solved by the same
  greedy with ``1/2 − ε`` ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.placement import CandidateSet, build_candidate_set
from ..model.entities import Strategy
from ..model.network import Scenario
from ..opt.heuristics import ant_colony, particle_swarm, simulated_annealing
from ..opt.submodular import (
    ChargingUtilityObjective,
    ProportionalFairnessObjective,
    greedy_matroid,
)

__all__ = [
    "FairnessSolution",
    "fairness_frontier",
    "maxmin_placement",
    "proportional_fair_placement",
    "min_utility",
    "utilities_of",
]


def utilities_of(scenario: Scenario, candidates: CandidateSet, indices: Sequence[int]) -> np.ndarray:
    """Exact per-device utilities of a candidate index selection."""
    ev = scenario.evaluator()
    idx = list(indices)
    powers = candidates.exact_power[idx].sum(axis=0) if idx else np.zeros(ev.num_devices)
    return np.minimum(1.0, powers / ev.thresholds)


def min_utility(scenario: Scenario, candidates: CandidateSet, indices: Sequence[int]) -> float:
    """The max-min objective value of a selection."""
    u = utilities_of(scenario, candidates, indices)
    return float(u.min()) if u.size else 0.0


@dataclass
class FairnessSolution:
    """A fairness-oriented placement with its per-device utilities."""

    strategies: list[Strategy]
    utilities: np.ndarray
    min_utility: float
    mean_utility: float


def _to_solution(scenario: Scenario, candidates: CandidateSet, indices: Sequence[int]) -> FairnessSolution:
    u = utilities_of(scenario, candidates, indices)
    return FairnessSolution(
        strategies=[candidates.strategies[k] for k in indices],
        utilities=u,
        min_utility=float(u.min()) if u.size else 0.0,
        mean_utility=float(u.mean()) if u.size else 0.0,
    )


def maxmin_placement(
    scenario: Scenario,
    candidates: CandidateSet,
    rng: np.random.Generator,
    *,
    method: Literal["sa", "pso", "aco"] = "sa",
    iterations: int = 1500,
) -> FairnessSolution:
    """Max-min fair placement via a metaheuristic over the candidate set.

    The black-box objective is the exact minimum utility, with the mean as an
    infinitesimal tie-breaker so plateaus at min=0 still guide the search.
    """

    def objective(indices: list[int]) -> float:
        u = utilities_of(scenario, candidates, indices)
        if u.size == 0:
            return 0.0
        return float(u.min()) + 1e-3 * float(u.mean())

    part_of, caps = candidates.part_of, candidates.capacities
    if method == "sa":
        res = simulated_annealing(objective, part_of, caps, rng, iterations=iterations)
    elif method == "pso":
        res = particle_swarm(objective, part_of, caps, rng, iterations=max(10, iterations // 25))
    elif method == "aco":
        res = ant_colony(objective, part_of, caps, rng, iterations=max(10, iterations // 40))
    else:
        raise ValueError(f"unknown method {method!r}")
    return _to_solution(scenario, candidates, res.indices)


def proportional_fair_placement(scenario: Scenario, candidates: CandidateSet) -> FairnessSolution:
    """Proportional fairness (Eq. 16) via the submodular greedy."""
    ev = scenario.evaluator()
    objective = ProportionalFairnessObjective(candidates.approx_power, ev.thresholds)
    result = greedy_matroid(objective, candidates.matroid())
    return _to_solution(scenario, candidates, result.indices)


def fairness_frontier(
    *,
    family: str = "fairness",
    count: int = 8,
    seed: int = 0,
    eps: float = 0.3,
    rng: np.random.Generator | None = None,
    maxmin_iterations: int = 400,
) -> list[dict]:
    """Utility-vs-fairness frontier over a generated scenario family.

    Sweeps *count* instances of a :mod:`repro.variation` family (default:
    the ``fairness`` stress family — a served cluster plus a walled-off
    starved cluster) and, on each instance's shared PDCS candidate set,
    compares the utilitarian greedy against proportional fairness (and,
    when *rng* is given, the max-min SA metaheuristic).  One extraction
    per scenario serves every objective, so rows differ only in selection.

    Returns one row per scenario: the provenance stamp plus per-method
    ``{"min": min utility, "mean": mean utility}`` — the frontier data
    behind the §8.3 discussion (utilitarian placements starve the walled
    cluster; fair objectives trade mean for min).
    """
    from ..variation import case_seed, get_family  # local: keep extensions import-light

    fam = get_family(family)
    rows: list[dict] = []
    for i in range(count):
        varied = fam.build(seed=case_seed(seed, i))
        scenario = varied.scenario
        candidates = build_candidate_set(scenario, eps=eps, workers=1)
        ev = scenario.evaluator()
        methods: dict[str, FairnessSolution] = {}
        greedy = greedy_matroid(
            ChargingUtilityObjective(candidates.approx_power, ev.thresholds),
            candidates.matroid(),
        )
        methods["greedy"] = _to_solution(scenario, candidates, greedy.indices)
        methods["proportional"] = proportional_fair_placement(scenario, candidates)
        if rng is not None:
            methods["maxmin"] = maxmin_placement(
                scenario, candidates, rng, method="sa", iterations=maxmin_iterations
            )
        rows.append(
            {
                "provenance": varied.provenance(),
                "methods": {
                    name: {"min": sol.min_utility, "mean": sol.mean_utility}
                    for name, sol in methods.items()
                },
            }
        )
    return rows
