"""Deployment-cost-constrained placement (§8.2).

The overall deployment cost of a placement ``S`` is

.. math:: c(S) = \\sum_{s_i \\in S} f_d(d_i) + f_\\theta(\\theta_i) + f_P(P_i)

where ``d_i`` is the travel distance to bring charger *i* into place (the
travel component of the whole fleet is a TSP tour from the base station),
``θ_i`` the rotation performed and ``P_i`` the working power.  The problem
becomes maximizing the monotone submodular utility subject to both the
partition matroid *and* a knapsack-style budget ``c(S) ≤ B``; following the
routing-constrained submodular maximization approach the paper cites [46],
we implement the **generalized cost-benefit greedy**: each round picks the
candidate with the best marginal-gain-per-marginal-cost ratio that still fits
the budget, and the final answer is the better of that run and the best
single affordable candidate — the classical device that yields the
``(1/2)(1 − 1/e)``-style guarantee for this family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.placement import CandidateSet
from ..model.entities import Strategy
from ..model.network import Scenario
from ..opt.submodular import ChargingUtilityObjective
from ..opt.tsp import mtsp_split, plan_tour, plan_tour_matrix, tour_length

__all__ = [
    "DeploymentCostModel",
    "BudgetedSolution",
    "budgeted_placement",
    "placement_cost",
    "multi_base_travel",
]


@dataclass(frozen=True)
class DeploymentCostModel:
    """Monotone cost components ``f_d``, ``f_θ``, ``f_P``.

    Defaults are linear with unit weights and power cost proportional to the
    inverse-square-law scale ``a`` of the charger's strongest pairing, which
    stands in for the working power of Table 2's charger classes.
    """

    base: tuple[float, float] = (0.0, 0.0)
    f_distance: Callable[[float], float] = staticmethod(lambda d: d)
    f_rotation: Callable[[float], float] = staticmethod(lambda t: t)
    f_power: Callable[[float], float] = staticmethod(lambda p: p)
    power_of_type: dict[str, float] | None = None

    def strategy_cost(self, s: Strategy, *, travel: float | None = None) -> float:
        """Cost of deploying one charger; *travel* defaults to the straight
        line from the base station."""
        if travel is None:
            travel = math.hypot(s.position[0] - self.base[0], s.position[1] - self.base[1])
        rotation = s.orientation  # rotation from the reference bearing 0
        power = (self.power_of_type or {}).get(s.ctype.name, 1.0)
        return self.f_distance(travel) + self.f_rotation(rotation) + self.f_power(power)


def placement_cost(
    strategies: Sequence[Strategy],
    model: DeploymentCostModel,
    *,
    use_tour: bool = True,
    obstacles: Sequence | None = None,
) -> float:
    """Total deployment cost of a placement.

    With *use_tour*, the travel component is a shared TSP tour visiting all
    placement positions from the base station, apportioned equally across
    chargers; otherwise each charger pays its own straight-line distance.
    When *obstacles* are given, tour legs use obstacle-aware shortest paths
    (visibility graph) instead of Euclidean distances — the carrier cannot
    drive through obstacles.
    """
    strategies = list(strategies)
    if not strategies:
        return 0.0
    if use_tour:
        pts = np.vstack([[model.base], [s.position for s in strategies]])
        if obstacles:
            from ..opt.paths import path_length_matrix

            dist = path_length_matrix(pts, list(obstacles))
            _tour, length = plan_tour_matrix(dist, start=0)
        else:
            _tour, length = plan_tour(pts, start=0)
        per = length / len(strategies)
        return float(sum(model.strategy_cost(s, travel=per) for s in strategies))
    return float(sum(model.strategy_cost(s) for s in strategies))


def multi_base_travel(
    strategies: Sequence[Strategy], bases: Sequence[Sequence[float]]
) -> tuple[list[list[int]], float]:
    """§8.2's m-TSP variant: chargers start from *m* base stations.

    Each placement position is assigned to its nearest base; every base runs
    an NN + 2-opt tour over its own group.  Returns the per-base strategy
    index groups and the total closed travel length across all bases (a base
    with no assignments contributes zero).
    """
    strategies = list(strategies)
    bs = np.asarray(bases, dtype=float)
    if bs.ndim != 2 or bs.shape[1] != 2 or len(bs) == 0:
        raise ValueError("bases must be a non-empty (m, 2) array-like")
    if not strategies:
        return [[] for _ in range(len(bs))], 0.0
    pts = np.asarray([s.position for s in strategies], dtype=float)
    groups = mtsp_split(pts, bs)
    total = 0.0
    for m, members in enumerate(groups):
        if not members:
            continue
        cluster = np.vstack([bs[m][None, :], pts[members]])
        # mtsp_split already ordered members by NN + 2-opt from the base.
        order = [0] + list(range(1, len(cluster)))
        total += tour_length(cluster, order)
    return groups, float(total)


@dataclass
class BudgetedSolution:
    """A budget-constrained placement with its realized cost."""

    strategies: list[Strategy]
    utility: float
    cost: float
    budget: float


def budgeted_placement(
    scenario: Scenario,
    candidates: CandidateSet,
    budget: float,
    *,
    cost_model: DeploymentCostModel | None = None,
) -> BudgetedSolution:
    """Generalized cost-benefit greedy under ``c(S) ≤ B`` + type budgets.

    Costs are evaluated with straight-line travel per charger (the additive
    surrogate that makes the greedy well-defined); the reported cost of the
    returned placement uses the full tour-based :func:`placement_cost`.
    """
    if budget < 0.0:
        raise ValueError("budget must be non-negative")
    model = cost_model if cost_model is not None else DeploymentCostModel()
    ev = scenario.evaluator()
    n = candidates.num_candidates
    if n == 0:
        return BudgetedSolution([], 0.0, 0.0, budget)
    objective = ChargingUtilityObjective(candidates.approx_power, ev.thresholds)
    costs = np.array([model.strategy_cost(s) for s in candidates.strategies])
    part_of = np.asarray(candidates.part_of)
    remaining = list(candidates.capacities)

    chosen: list[int] = []
    chosen_mask = np.zeros(n, dtype=bool)
    current = np.zeros(objective.num_devices)
    spent = 0.0
    while True:
        afford = (~chosen_mask) & (costs <= budget - spent + 1e-12)
        for q, cap in enumerate(remaining):
            if cap <= 0:
                afford &= part_of != q
        pool = np.nonzero(afford)[0]
        if pool.size == 0:
            break
        gains = objective.gains(current, pool)
        ratio = gains / np.maximum(costs[pool], 1e-12)
        k = int(np.argmax(ratio))
        if gains[k] <= 0.0:
            break
        e = int(pool[k])
        chosen.append(e)
        chosen_mask[e] = True
        current += objective.P[e]
        spent += float(costs[e])
        remaining[part_of[e]] -= 1

    greedy_val = objective.value(chosen)
    # Best affordable singleton — required for the constant-factor guarantee.
    single_pool = np.nonzero(costs <= budget + 1e-12)[0]
    best_single: list[int] = []
    if single_pool.size:
        singles = objective.gains(np.zeros(objective.num_devices), single_pool)
        k = int(np.argmax(singles))
        if singles[k] > greedy_val:
            best_single = [int(single_pool[k])]
    pick = best_single if best_single else chosen
    strategies = [candidates.strategies[k] for k in pick]
    exact_total = candidates.exact_power[pick].sum(axis=0) if pick else np.zeros(ev.num_devices)
    utility = float(np.minimum(1.0, exact_total / ev.thresholds).mean()) if len(exact_total) else 0.0
    return BudgetedSolution(strategies, utility, placement_cost(strategies, model), budget)
