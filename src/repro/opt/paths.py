"""Obstacle-aware shortest paths via the visibility graph.

The deployment-cost model of §8.2 charges travel distance for carrying
chargers to their positions; with obstacles on the plane the carrier cannot
drive through them, so Euclidean distance underestimates the true travel.
The classical remedy is the *visibility graph*: nodes are the terminals plus
all obstacle vertices, edges join mutually visible nodes weighted by
Euclidean length; shortest paths in this graph are shortest obstacle-free
paths in the plane (for polygonal obstacles).

Built on :mod:`networkx` for the graph algorithms and on
:mod:`repro.geometry` for the visibility predicate.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..geometry import EPS, Polygon, line_of_sight

__all__ = ["VisibilityGraph", "shortest_path_length", "path_length_matrix"]


def _offset_vertices(obstacles: Sequence[Polygon], margin: float) -> list[tuple[float, float]]:
    """Obstacle vertices pushed slightly outward so path corners clear the
    boundary (grazing segments along edges are not 'blocked', but a small
    margin keeps the geometry robust)."""
    out: list[tuple[float, float]] = []
    for h in obstacles:
        centroid = h.centroid()
        for v in h.vertices:
            d = np.asarray(v, dtype=float) - centroid
            norm = float(np.hypot(d[0], d[1]))
            if norm < EPS:
                out.append((float(v[0]), float(v[1])))
            else:
                p = np.asarray(v, dtype=float) + d / norm * margin
                out.append((float(p[0]), float(p[1])))
    return out


class VisibilityGraph:
    """Shortest obstacle-free paths between arbitrary points.

    The obstacle-vertex skeleton is built once; terminals are connected on
    demand per query (the standard two-point visibility-graph query).
    """

    def __init__(self, obstacles: Sequence[Polygon], *, margin: float = 1e-6):
        self.obstacles = list(obstacles)
        self._graph = nx.Graph()
        self._vertices = _offset_vertices(self.obstacles, margin)
        for i, p in enumerate(self._vertices):
            self._graph.add_node(("v", i), pos=p)
        for i in range(len(self._vertices)):
            for j in range(i + 1, len(self._vertices)):
                a, b = self._vertices[i], self._vertices[j]
                if line_of_sight(a, b, self.obstacles):
                    self._graph.add_edge(("v", i), ("v", j), weight=float(np.hypot(b[0] - a[0], b[1] - a[1])))

    @property
    def skeleton_size(self) -> tuple[int, int]:
        """(nodes, edges) of the obstacle-vertex skeleton."""
        return self._graph.number_of_nodes(), self._graph.number_of_edges()

    def distance(self, a: Sequence[float], b: Sequence[float]) -> float:
        """Length of the shortest obstacle-free path from *a* to *b*.

        Returns ``inf`` when no path exists (a terminal sealed inside an
        obstacle pocket).
        """
        a = (float(a[0]), float(a[1]))
        b = (float(b[0]), float(b[1]))
        if line_of_sight(a, b, self.obstacles):
            return float(np.hypot(b[0] - a[0], b[1] - a[1]))
        g = self._graph.copy()
        for label, p in (("s", a), ("t", b)):
            g.add_node(label, pos=p)
            for i, v in enumerate(self._vertices):
                if line_of_sight(p, v, self.obstacles):
                    g.add_edge(label, ("v", i), weight=float(np.hypot(v[0] - p[0], v[1] - p[1])))
        try:
            return float(nx.shortest_path_length(g, "s", "t", weight="weight"))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return float("inf")

    def path(self, a: Sequence[float], b: Sequence[float]) -> list[tuple[float, float]]:
        """The shortest obstacle-free polyline from *a* to *b* (inclusive)."""
        a = (float(a[0]), float(a[1]))
        b = (float(b[0]), float(b[1]))
        if line_of_sight(a, b, self.obstacles):
            return [a, b]
        g = self._graph.copy()
        for label, p in (("s", a), ("t", b)):
            g.add_node(label, pos=p)
            for i, v in enumerate(self._vertices):
                if line_of_sight(p, v, self.obstacles):
                    g.add_edge(label, ("v", i), weight=float(np.hypot(v[0] - p[0], v[1] - p[1])))
        nodes = nx.shortest_path(g, "s", "t", weight="weight")
        out = []
        for n in nodes:
            if n == "s":
                out.append(a)
            elif n == "t":
                out.append(b)
            else:
                out.append(self._vertices[n[1]])
        return out


def shortest_path_length(
    a: Sequence[float], b: Sequence[float], obstacles: Sequence[Polygon]
) -> float:
    """One-shot obstacle-aware distance (builds a throwaway graph)."""
    return VisibilityGraph(obstacles).distance(a, b)


def path_length_matrix(points: np.ndarray, obstacles: Sequence[Polygon]) -> np.ndarray:
    """Pairwise obstacle-aware distance matrix for TSP-style planning."""
    vg = VisibilityGraph(obstacles)
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = vg.distance(pts[i], pts[j])
            out[i, j] = out[j, i] = d
    return out
