"""Multiprocessor scheduling: the LPT rule used by the distributed extractor.

The paper assigns PDCS-extraction tasks to parallel machines with Graham's
Longest Processing Time algorithm [40], a ``4/3 − 1/(3m)`` approximation for
minimizing makespan on identical machines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

__all__ = ["Schedule", "lpt_schedule", "makespan", "brute_force_makespan"]


@dataclass(frozen=True)
class Schedule:
    """An assignment of tasks to machines.

    ``assignment[t]`` is the machine index of task *t*; ``loads[m]`` is the
    total processing time on machine *m*.
    """

    assignment: tuple[int, ...]
    loads: tuple[float, ...]

    @property
    def makespan(self) -> float:
        """Completion time of the schedule: the maximum machine load."""
        return max(self.loads) if self.loads else 0.0

    def tasks_of(self, machine: int) -> list[int]:
        """Task indices assigned to *machine*."""
        return [t for t, m in enumerate(self.assignment) if m == machine]


def lpt_schedule(durations: Sequence[float], machines: int) -> Schedule:
    """Graham's LPT schedule: sort tasks by decreasing duration, always give
    the next task to the least-loaded machine."""
    if machines <= 0:
        raise ValueError("need at least one machine")
    dur = np.asarray(durations, dtype=float)
    if np.any(dur < 0.0):
        raise ValueError("durations must be non-negative")
    n = len(dur)
    assignment = [0] * n
    heap: list[tuple[float, int]] = [(0.0, m) for m in range(machines)]
    heapq.heapify(heap)
    loads = [0.0] * machines
    for t in np.argsort(-dur, kind="stable"):
        load, m = heapq.heappop(heap)
        assignment[int(t)] = m
        load += float(dur[t])
        loads[m] = load
        heapq.heappush(heap, (load, m))
    return Schedule(tuple(assignment), tuple(loads))


def makespan(durations: Sequence[float], machines: int) -> float:
    """Shortcut: LPT makespan for the given durations."""
    return lpt_schedule(durations, machines).makespan


def brute_force_makespan(durations: Sequence[float], machines: int) -> float:
    """Optimal makespan by exhaustive assignment — for tests only (O(m^n))."""
    dur = list(durations)
    if not dur:
        return 0.0
    best = float("inf")
    for combo in product(range(machines), repeat=len(dur)):
        loads = [0.0] * machines
        for t, m in enumerate(combo):
            loads[m] += dur[t]
        best = min(best, max(loads))
    return best
