"""Optimization substrate: submodular greedy, matroids, matching, scheduling,
TSP heuristics and metaheuristics."""

from .heuristics import (
    HeuristicResult,
    ant_colony,
    particle_swarm,
    random_feasible_solution,
    simulated_annealing,
)
from .continuous import ContinuousGreedyResult, continuous_greedy
from .local_search import local_search_refine
from .matching import has_perfect_matching, hopcroft_karp, hungarian
from .paths import VisibilityGraph, path_length_matrix, shortest_path_length
from .matroid import Matroid, PartitionMatroid, UniformMatroid
from .scheduling import Schedule, brute_force_makespan, lpt_schedule, makespan
from .submodular import (
    AdditivePowerObjective,
    ChargingUtilityObjective,
    GreedyResult,
    ProportionalFairnessObjective,
    exhaustive_best,
    greedy_matroid,
    lazy_greedy_matroid,
    stochastic_greedy_matroid,
)
from .tsp import (
    mtsp_split,
    nearest_neighbor_tour,
    nearest_neighbor_tour_matrix,
    plan_tour,
    plan_tour_matrix,
    tour_length,
    tour_length_matrix,
    two_opt,
    two_opt_matrix,
)

__all__ = [
    "AdditivePowerObjective",
    "ChargingUtilityObjective",
    "ContinuousGreedyResult",
    "GreedyResult",
    "HeuristicResult",
    "Matroid",
    "PartitionMatroid",
    "ProportionalFairnessObjective",
    "Schedule",
    "UniformMatroid",
    "VisibilityGraph",
    "ant_colony",
    "brute_force_makespan",
    "continuous_greedy",
    "exhaustive_best",
    "greedy_matroid",
    "has_perfect_matching",
    "hopcroft_karp",
    "hungarian",
    "lazy_greedy_matroid",
    "local_search_refine",
    "lpt_schedule",
    "makespan",
    "mtsp_split",
    "nearest_neighbor_tour",
    "nearest_neighbor_tour_matrix",
    "particle_swarm",
    "path_length_matrix",
    "plan_tour",
    "plan_tour_matrix",
    "random_feasible_solution",
    "shortest_path_length",
    "simulated_annealing",
    "stochastic_greedy_matroid",
    "tour_length",
    "tour_length_matrix",
    "two_opt",
    "two_opt_matrix",
]
