"""Monotone submodular maximization under matroid constraints.

This implements the solver side of Lemma 4.6 / Theorem 4.2: after PDCS
extraction, HIPO becomes maximizing

.. math:: f(X) = \\frac{1}{N_o} \\sum_j U_j\\Big(\\sum_{i \\in X} P_{ij}\\Big)

over independent sets of a partition matroid (one part per charger type).
The classical greedy achieves a ``1/2`` approximation [Fisher, Nemhauser,
Wolsey]; we provide

* :func:`greedy_matroid` — vectorized full-scan greedy (every remaining
  candidate's marginal gain is one numpy broadcast per iteration),
* :func:`lazy_greedy_matroid` — CELF-style lazy evaluation that exploits the
  diminishing-returns property (ablation: ``bench_ablation_lazy_greedy``),
* objective classes whose per-device utility is a concave non-decreasing
  function of the additive received power, which is exactly the structural
  condition making ``f`` monotone submodular.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .matroid import Matroid, PartitionMatroid

__all__ = [
    "AdditivePowerObjective",
    "ChargingUtilityObjective",
    "ProportionalFairnessObjective",
    "GreedyResult",
    "greedy_matroid",
    "lazy_greedy_matroid",
    "stochastic_greedy_matroid",
    "exhaustive_best",
]


class AdditivePowerObjective(ABC):
    """Set objective ``f(X) = scale * Σ_j g_j(Σ_{i∈X} P[i, j])``.

    ``P`` is the (candidates × devices) power matrix; ``g_j`` is concave and
    non-decreasing with ``g_j(0) = 0``, so ``f`` is normalized, monotone and
    submodular (the proof of Lemma 4.6 verbatim).
    """

    def __init__(self, power_matrix: np.ndarray, thresholds: np.ndarray, *, scale: float | None = None):
        self.P = np.asarray(power_matrix, dtype=float)
        if self.P.ndim != 2:
            raise ValueError("power matrix must be 2-D (candidates x devices)")
        self.thresholds = np.asarray(thresholds, dtype=float)
        if self.thresholds.shape != (self.P.shape[1],):
            raise ValueError("thresholds length must equal number of devices")
        if np.any(self.thresholds <= 0.0):
            raise ValueError("thresholds must be positive")
        self.scale = scale if scale is not None else 1.0

    @property
    def num_candidates(self) -> int:
        return self.P.shape[0]

    @property
    def num_devices(self) -> int:
        return self.P.shape[1]

    @abstractmethod
    def device_utilities(self, powers: np.ndarray) -> np.ndarray:
        """Apply ``g_j`` elementwise; *powers* may be any shape broadcast over
        devices in the last axis."""

    def value_of_powers(self, powers: np.ndarray) -> float:
        """Objective value for a given received-power vector."""
        return float(self.device_utilities(powers).sum()) * self.scale

    def value(self, subset: Iterable[int]) -> float:
        """Objective value of a candidate index set."""
        idx = list(subset)
        powers = self.P[idx].sum(axis=0) if idx else np.zeros(self.num_devices)
        return self.value_of_powers(powers)

    def gains(self, current_power: np.ndarray, candidate_indices: np.ndarray) -> np.ndarray:
        """Marginal gains of each candidate on top of *current_power*.

        One broadcast: ``g(cur + P[C]) - g(cur)`` summed over devices.
        """
        base = self.device_utilities(current_power).sum()
        stacked = self.device_utilities(current_power[None, :] + self.P[candidate_indices])
        return (stacked.sum(axis=1) - base) * self.scale


class ChargingUtilityObjective(AdditivePowerObjective):
    """The HIPO objective: ``U_j(x) = min(1, x / Pth_j)``, scaled by ``1/No``."""

    def __init__(self, power_matrix: np.ndarray, thresholds: np.ndarray):
        super().__init__(power_matrix, thresholds)
        self.scale = 1.0 / max(1, self.num_devices)

    def device_utilities(self, powers: np.ndarray) -> np.ndarray:
        return np.minimum(1.0, np.maximum(powers, 0.0) / self.thresholds)


class ProportionalFairnessObjective(AdditivePowerObjective):
    """§8.3 proportional fairness: ``Σ_j log(U_j(P_j) + 1)``.

    ``log(min(1, x/th) + 1)`` is concave non-decreasing in ``x`` with value 0
    at 0, so the greedy machinery applies unchanged with the same ``1/2 − ε``
    ratio.
    """

    def device_utilities(self, powers: np.ndarray) -> np.ndarray:
        return np.log1p(np.minimum(1.0, np.maximum(powers, 0.0) / self.thresholds))


@dataclass
class GreedyResult:
    """Outcome of a greedy run."""

    indices: list[int]
    value: float
    gains: list[float] = field(default_factory=list)
    evaluations: int = 0

    def __iter__(self):
        return iter(self.indices)


def greedy_matroid(
    objective: AdditivePowerObjective,
    matroid: Matroid,
    *,
    part_order: Sequence[int] | None = None,
) -> GreedyResult:
    """Full-scan greedy for a monotone submodular objective under a matroid.

    For a :class:`PartitionMatroid` with *part_order* given, the paper's
    Algorithm 3 is reproduced exactly: charger types are processed in that
    order and each type's budget is filled by globally-maximal marginal
    gains among that type's candidates.  Without *part_order* the standard
    matroid greedy picks the globally best extendable candidate each round;
    both achieve the ``1/2`` ratio.

    Zero-gain picks are skipped: they cannot help a monotone objective.
    """
    n = objective.num_candidates
    if matroid.ground_size != n:
        raise ValueError("matroid ground size must match number of candidates")
    chosen: list[int] = []
    chosen_mask = np.zeros(n, dtype=bool)
    current = np.zeros(objective.num_devices)
    gains_hist: list[float] = []
    evaluations = 0

    def pick_from(pool: np.ndarray) -> bool:
        nonlocal evaluations, current
        if pool.size == 0:
            return False
        gains = objective.gains(current, pool)
        evaluations += int(pool.size)
        k = int(np.argmax(gains))
        if gains[k] <= 0.0:
            return False
        e = int(pool[k])
        chosen.append(e)
        chosen_mask[e] = True
        current += objective.P[e]
        gains_hist.append(float(gains[k]))
        return True

    if part_order is not None:
        if not isinstance(matroid, PartitionMatroid):
            raise TypeError("part_order requires a PartitionMatroid")
        part_of = np.asarray(matroid.part_of)
        for q in part_order:
            cap = matroid.capacities[q]
            members = np.nonzero(part_of == q)[0]
            for _ in range(cap):
                pool = members[~chosen_mask[members]]
                if not pick_from(pool):
                    break
    elif isinstance(matroid, PartitionMatroid):
        # The eligible pool is a pure mask computation for a partition
        # matroid: unchosen elements whose part still has spare capacity.
        part_of = np.asarray(matroid.part_of, dtype=int)
        capacities = np.asarray(matroid.capacities, dtype=int)
        counts = np.zeros(len(capacities), dtype=int)
        while True:
            open_part = counts < capacities
            extendable = np.nonzero(~chosen_mask & open_part[part_of])[0]
            if not pick_from(extendable):
                break
            counts[part_of[chosen[-1]]] += 1
    else:
        while True:
            extendable = np.array(
                [e for e in range(n) if not chosen_mask[e] and matroid.can_extend(chosen, e)],
                dtype=int,
            )
            if not pick_from(extendable):
                break

    return GreedyResult(chosen, objective.value(chosen), gains_hist, evaluations)


def lazy_greedy_matroid(
    objective: AdditivePowerObjective,
    matroid: PartitionMatroid,
) -> GreedyResult:
    """CELF lazy greedy for a partition matroid.

    Keeps one max-heap per part of stale upper bounds; submodularity
    guarantees a candidate whose refreshed gain still tops every heap is the
    true argmax.  Produces the same selection as the global-order
    :func:`greedy_matroid` (up to ties) with far fewer gain evaluations.
    """
    n = objective.num_candidates
    if matroid.ground_size != n:
        raise ValueError("matroid ground size must match number of candidates")
    part_of = matroid.part_of
    remaining = list(matroid.capacities)
    current = np.zeros(objective.num_devices)
    init_gains = objective.gains(current, np.arange(n)) if n else np.zeros(0)
    evaluations = n
    # One global heap; entries (-gain, iteration_stamp, element).
    heap: list[tuple[float, int, int]] = [(-float(g), 0, e) for e, g in enumerate(init_gains)]
    heapq.heapify(heap)
    chosen: list[int] = []
    gains_hist: list[float] = []
    round_no = 0
    while heap and any(r > 0 for r in remaining):
        round_no += 1
        while heap:
            neg_gain, stamp, e = heapq.heappop(heap)
            if remaining[part_of[e]] <= 0:
                continue  # part exhausted; drop permanently
            if stamp == round_no:
                gain = -neg_gain
                if gain <= 0.0:
                    heap.clear()
                    break
                chosen.append(e)
                current += objective.P[e]
                remaining[part_of[e]] -= 1
                gains_hist.append(gain)
                break
            fresh = float(objective.gains(current, np.array([e]))[0])
            evaluations += 1
            heapq.heappush(heap, (-fresh, round_no, e))
        else:
            break
    return GreedyResult(chosen, objective.value(chosen), gains_hist, evaluations)


def stochastic_greedy_matroid(
    objective: AdditivePowerObjective,
    matroid: PartitionMatroid,
    rng: np.random.Generator,
    *,
    sample_fraction: float = 0.25,
) -> GreedyResult:
    """Stochastic ("lazier than lazy") greedy for a partition matroid.

    Each round evaluates only a uniform random *sample_fraction* of the
    still-eligible candidates and takes the best of the sample — the
    Mirzasoleiman et al. trick that trades an additive ε in the guarantee
    for a large constant-factor cut in gain evaluations.  Useful when the
    candidate set is huge and even one full scan per round is costly.
    """
    if not (0.0 < sample_fraction <= 1.0):
        raise ValueError("sample_fraction must be in (0, 1]")
    n = objective.num_candidates
    if matroid.ground_size != n:
        raise ValueError("matroid ground size must match number of candidates")
    part_of = np.asarray(matroid.part_of)
    remaining = list(matroid.capacities)
    eligible = np.ones(n, dtype=bool)
    current = np.zeros(objective.num_devices)
    chosen: list[int] = []
    gains_hist: list[float] = []
    evaluations = 0
    while True:
        for q, cap in enumerate(remaining):
            if cap <= 0:
                eligible &= part_of != q
        pool = np.nonzero(eligible)[0]
        if pool.size == 0:
            break
        k = max(1, int(round(sample_fraction * pool.size)))
        sample = rng.choice(pool, size=min(k, pool.size), replace=False)
        gains = objective.gains(current, sample)
        evaluations += int(sample.size)
        best = int(np.argmax(gains))
        if gains[best] <= 0.0:
            # The sample may just be unlucky; fall back to one full scan to
            # certify termination (keeps the monotone no-zero-gain property).
            gains_all = objective.gains(current, pool)
            evaluations += int(pool.size)
            best_all = int(np.argmax(gains_all))
            if gains_all[best_all] <= 0.0:
                break
            e = int(pool[best_all])
            gain = float(gains_all[best_all])
        else:
            e = int(sample[best])
            gain = float(gains[best])
        chosen.append(e)
        eligible[e] = False
        current += objective.P[e]
        remaining[part_of[e]] -= 1
        gains_hist.append(gain)
    return GreedyResult(chosen, objective.value(chosen), gains_hist, evaluations)


def exhaustive_best(objective: AdditivePowerObjective, matroid: Matroid) -> GreedyResult:
    """Optimal solution by exhaustive search over maximal independent sets.

    Exponential — only for cross-checking the greedy's approximation ratio on
    tiny instances in tests.
    """
    from itertools import combinations

    n = objective.num_candidates
    best: list[int] = []
    best_val = 0.0
    rank = matroid.rank()
    for size in range(rank, -1, -1):
        found_any = False
        for combo in combinations(range(n), size):
            if matroid.is_independent(combo):
                found_any = True
                v = objective.value(combo)
                if v > best_val:
                    best_val, best = v, list(combo)
        if found_any:
            break  # monotone objective: maximal sets dominate
    return GreedyResult(best, best_val)
