"""Travelling-salesman heuristics for the deployment-cost model (§8.2).

The travel component of the deployment cost — carrying chargers from a base
station to their placement positions — is a TSP (single base) or m-TSP
(m bases).  We provide the standard nearest-neighbour construction plus
2-opt improvement, and a simple m-TSP split; these are classical heuristics
(the paper only needs the tour *cost* inside its budget constraint).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "tour_length",
    "tour_length_matrix",
    "nearest_neighbor_tour",
    "nearest_neighbor_tour_matrix",
    "two_opt",
    "two_opt_matrix",
    "plan_tour",
    "plan_tour_matrix",
    "mtsp_split",
]


def _dist_matrix(points: np.ndarray) -> np.ndarray:
    d = points[:, None, :] - points[None, :, :]
    return np.hypot(d[..., 0], d[..., 1])


def tour_length_matrix(dist: np.ndarray, tour: Sequence[int], *, closed: bool = True) -> float:
    """Tour length under an arbitrary (symmetric) distance matrix."""
    idx = list(tour)
    if len(idx) < 2:
        return 0.0
    total = sum(float(dist[a, b]) for a, b in zip(idx, idx[1:]))
    if closed:
        total += float(dist[idx[-1], idx[0]])
    return total


def nearest_neighbor_tour_matrix(dist: np.ndarray, *, start: int = 0) -> list[int]:
    """Greedy nearest-neighbour tour under an arbitrary distance matrix."""
    n = len(dist)
    if n == 0:
        return []
    unvisited = np.ones(n, dtype=bool)
    tour = [start]
    unvisited[start] = False
    cur = start
    for _ in range(n - 1):
        row = np.where(unvisited, dist[cur], np.inf)
        nxt = int(np.argmin(row))
        tour.append(nxt)
        unvisited[nxt] = False
        cur = nxt
    return tour


def two_opt_matrix(dist: np.ndarray, tour: Sequence[int], *, max_rounds: int = 20) -> list[int]:
    """2-opt under an arbitrary (symmetric) distance matrix."""
    t = list(tour)
    n = len(t)
    if n < 4:
        return t
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            a, b = t[i], t[(i + 1) % n]
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue
                c, d = t[j], t[(j + 1) % n]
                delta = dist[a, c] + dist[b, d] - dist[a, b] - dist[c, d]
                if delta < -1e-12:
                    t[i + 1 : j + 1] = reversed(t[i + 1 : j + 1])
                    improved = True
                    a, b = t[i], t[(i + 1) % n]
        if not improved:
            break
    return t


def plan_tour_matrix(dist: np.ndarray, *, start: int = 0) -> tuple[list[int], float]:
    """NN + 2-opt tour and closed length under a distance matrix."""
    tour = two_opt_matrix(dist, nearest_neighbor_tour_matrix(dist, start=start))
    return tour, tour_length_matrix(dist, tour)


def tour_length(points: np.ndarray, tour: Sequence[int], *, closed: bool = True) -> float:
    """Length of the polyline visiting *points* in *tour* order."""
    pts = np.asarray(points, dtype=float)
    idx = list(tour)
    if len(idx) < 2:
        return 0.0
    ordered = pts[idx]
    seg = np.hypot(*(ordered[1:] - ordered[:-1]).T).sum()
    if closed:
        seg += float(np.hypot(*(ordered[0] - ordered[-1])))
    return float(seg)


def nearest_neighbor_tour(points: np.ndarray, *, start: int = 0) -> list[int]:
    """Greedy nearest-neighbour tour starting at index *start*."""
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    if n == 0:
        return []
    dist = _dist_matrix(pts)
    unvisited = np.ones(n, dtype=bool)
    tour = [start]
    unvisited[start] = False
    cur = start
    for _ in range(n - 1):
        row = np.where(unvisited, dist[cur], np.inf)
        nxt = int(np.argmin(row))
        tour.append(nxt)
        unvisited[nxt] = False
        cur = nxt
    return tour


def two_opt(points: np.ndarray, tour: Sequence[int], *, max_rounds: int = 20) -> list[int]:
    """2-opt local search: repeatedly reverse tour segments while improving.

    Never returns a longer tour than the input.
    """
    pts = np.asarray(points, dtype=float)
    t = list(tour)
    n = len(t)
    if n < 4:
        return t
    dist = _dist_matrix(pts)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            a, b = t[i], t[(i + 1) % n]
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue
                c, d = t[j], t[(j + 1) % n]
                delta = dist[a, c] + dist[b, d] - dist[a, b] - dist[c, d]
                if delta < -1e-12:
                    t[i + 1 : j + 1] = reversed(t[i + 1 : j + 1])
                    improved = True
                    a, b = t[i], t[(i + 1) % n]
        if not improved:
            break
    return t


def plan_tour(points: np.ndarray, *, start: int = 0) -> tuple[list[int], float]:
    """Nearest-neighbour + 2-opt tour and its closed length."""
    tour = two_opt(points, nearest_neighbor_tour(points, start=start))
    return tour, tour_length(points, tour)


def mtsp_split(points: np.ndarray, bases: np.ndarray) -> list[list[int]]:
    """m-TSP by assignment: each point joins its nearest base's tour.

    Returns one point-index list per base, each ordered by NN + 2-opt from
    the base.  A simple, deterministic heuristic sufficient for the cost
    model of §8.2 (chargers initially at *m* base stations).
    """
    pts = np.asarray(points, dtype=float)
    bs = np.asarray(bases, dtype=float)
    if len(bs) == 0:
        raise ValueError("need at least one base")
    if len(pts) == 0:
        return [[] for _ in range(len(bs))]
    d = pts[:, None, :] - bs[None, :, :]
    owner = np.argmin(np.hypot(d[..., 0], d[..., 1]), axis=1)
    groups: list[list[int]] = []
    for m in range(len(bs)):
        members = np.nonzero(owner == m)[0]
        if members.size == 0:
            groups.append([])
            continue
        cluster = np.vstack([bs[m][None, :], pts[members]])
        local = two_opt(cluster, nearest_neighbor_tour(cluster, start=0))
        ordered = [int(members[k - 1]) for k in local if k != 0]
        groups.append(ordered)
    return groups
