"""Continuous greedy + rounding for partition matroids (the paper's [39]).

Theorem 4.2's remark: the ``1/2`` greedy ratio can be lifted to ``1 − 1/e``
by the continuous greedy / pipage framework of Calinescu–Chekuri–Pál–Vondrák,
"which is, however, too computationally demanding to use in practice".  We
implement a practical sampled variant so that the trade-off can actually be
measured (``bench_ablation_continuous``):

* the multilinear extension ``F(x) = E[f(R_x)]`` is estimated by Monte-Carlo
  sampling of random sets ``R_x`` (include *i* with probability ``x_i``);
* each of ``T`` steps moves ``x`` by ``1/T`` along the feasible direction
  maximizing the sampled marginal-gain vector within the matroid polytope
  (for a partition matroid: per part, the top-``cap`` coordinates);
* the fractional solution is rounded per part without loss in expectation
  (independent rounding per part followed by picking the best of a few
  samples — for partition matroids each part's constraint is a simple
  cardinality cap, so sampled rounding is easy to repair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matroid import PartitionMatroid
from .submodular import AdditivePowerObjective

__all__ = ["ContinuousGreedyResult", "continuous_greedy"]


@dataclass
class ContinuousGreedyResult:
    """Rounded solution, its value, the fractional point and the oracle cost."""

    indices: list[int]
    value: float
    fractional: np.ndarray
    evaluations: int


def _parts(matroid: PartitionMatroid) -> list[np.ndarray]:
    part_arr = np.asarray(matroid.part_of)
    return [np.nonzero(part_arr == q)[0] for q in range(matroid.num_parts)]


def continuous_greedy(
    objective: AdditivePowerObjective,
    matroid: PartitionMatroid,
    rng: np.random.Generator,
    *,
    steps: int = 20,
    samples: int = 8,
    rounding_trials: int = 16,
) -> ContinuousGreedyResult:
    """Sampled continuous greedy achieving ``≈ (1 − 1/e)`` in expectation.

    ``steps × samples`` controls the gradient-estimate quality; the default
    is deliberately modest — the point of the ablation is the cost/benefit
    against the plain greedy, not squeezing the constant.
    """
    n = objective.num_candidates
    if matroid.ground_size != n:
        raise ValueError("matroid ground size must match number of candidates")
    if n == 0:
        return ContinuousGreedyResult([], 0.0, np.zeros(0), 0)
    parts = _parts(matroid)
    x = np.zeros(n)
    evaluations = 0
    for _ in range(steps):
        # Estimate the marginal-gain vector at x: E[f(R + i) - f(R)].
        gains = np.zeros(n)
        for _s in range(samples):
            r_mask = rng.random(n) < x
            current = objective.P[r_mask].sum(axis=0) if r_mask.any() else np.zeros(objective.num_devices)
            gains += objective.gains(current, np.arange(n))
            evaluations += n
        gains /= samples
        # Best feasible direction: per part, the top-capacity coordinates.
        direction = np.zeros(n)
        for q, members in enumerate(parts):
            cap = min(matroid.capacities[q], len(members))
            if cap == 0:
                continue
            order = members[np.argsort(-gains[members], kind="stable")[:cap]]
            positive = order[gains[order] > 0.0]
            direction[positive] = 1.0
        x = np.minimum(x + direction / steps, 1.0)

    # Rounding: sample independent sets consistent with x, keep the best.
    best: list[int] = []
    best_val = -np.inf
    for _t in range(rounding_trials):
        chosen: list[int] = []
        for q, members in enumerate(parts):
            cap = min(matroid.capacities[q], len(members))
            if cap == 0:
                continue
            xs = x[members]
            drawn = members[rng.random(len(members)) < xs]
            if len(drawn) > cap:  # repair: keep the highest-weight draws
                drawn = drawn[np.argsort(-xs[np.searchsorted(members, drawn)])[:cap]]
            elif len(drawn) < cap:  # top up with the largest remaining x
                rest = np.setdiff1d(members, drawn)
                extra = rest[np.argsort(-x[rest], kind="stable")[: cap - len(drawn)]]
                drawn = np.concatenate([drawn, extra[x[extra] > 0.0]])
            chosen.extend(int(e) for e in drawn)
        val = objective.value(chosen)
        evaluations += 1
        if val > best_val:
            best, best_val = chosen, val
    return ContinuousGreedyResult(best, float(best_val), x, evaluations)
