"""Metaheuristics for the max-min fairness variant (§8.3).

The paper notes that max-min charging utility admits no efficient
approximation for the submodular formulation and suggests Simulated
Annealing [50], Particle Swarm Optimization [48] and Ant Colony
Optimization [49].  All three are implemented here over the *discrete*
search space produced by PDCS extraction: a solution selects, per charger
type (matroid part), at most the budgeted number of candidate strategies.

All routines maximize a black-box ``objective(indices) -> float`` and take an
explicit ``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "HeuristicResult",
    "random_feasible_solution",
    "simulated_annealing",
    "particle_swarm",
    "ant_colony",
]

Objective = Callable[[list[int]], float]


@dataclass
class HeuristicResult:
    """Best solution found by a metaheuristic run."""

    indices: list[int]
    value: float
    history: list[float]


def _parts_index(part_of: Sequence[int], num_parts: int) -> list[np.ndarray]:
    part_arr = np.asarray(part_of)
    return [np.nonzero(part_arr == q)[0] for q in range(num_parts)]


def random_feasible_solution(
    rng: np.random.Generator, part_of: Sequence[int], capacities: Sequence[int]
) -> list[int]:
    """Uniformly random maximal independent set of the partition matroid."""
    sol: list[int] = []
    for q, members in enumerate(_parts_index(part_of, len(capacities))):
        k = min(capacities[q], len(members))
        if k > 0:
            sol.extend(int(e) for e in rng.choice(members, size=k, replace=False))
    return sol


def _swap_neighbor(
    rng: np.random.Generator,
    sol: list[int],
    parts: list[np.ndarray],
    part_of: Sequence[int],
) -> list[int]:
    """Neighbour: replace one chosen strategy by an unchosen one of the same part."""
    if not sol:
        return sol
    new = list(sol)
    pos = int(rng.integers(len(new)))
    q = part_of[new[pos]]
    pool = [int(e) for e in parts[q] if e not in set(new)]
    if not pool:
        return new
    new[pos] = pool[int(rng.integers(len(pool)))]
    return new


def simulated_annealing(
    objective: Objective,
    part_of: Sequence[int],
    capacities: Sequence[int],
    rng: np.random.Generator,
    *,
    iterations: int = 2000,
    t_start: float = 0.1,
    t_end: float = 1e-4,
    initial: list[int] | None = None,
) -> HeuristicResult:
    """Classical SA with geometric cooling over swap neighbourhoods."""
    parts = _parts_index(part_of, len(capacities))
    cur = list(initial) if initial is not None else random_feasible_solution(rng, part_of, capacities)
    cur_val = objective(cur)
    best, best_val = list(cur), cur_val
    history = [best_val]
    if iterations <= 0:
        return HeuristicResult(best, best_val, history)
    alpha = (t_end / t_start) ** (1.0 / iterations)
    t = t_start
    for _ in range(iterations):
        cand = _swap_neighbor(rng, cur, parts, part_of)
        val = objective(cand)
        if val >= cur_val or rng.random() < math.exp((val - cur_val) / max(t, 1e-12)):
            cur, cur_val = cand, val
            if cur_val > best_val:
                best, best_val = list(cur), cur_val
        history.append(best_val)
        t *= alpha
    return HeuristicResult(best, best_val, history)


def particle_swarm(
    objective: Objective,
    part_of: Sequence[int],
    capacities: Sequence[int],
    rng: np.random.Generator,
    *,
    particles: int = 12,
    iterations: int = 60,
    w_personal: float = 0.35,
    w_global: float = 0.35,
) -> HeuristicResult:
    """Discrete PSO: particles move by probabilistically adopting elements of
    their personal / the global best (per matroid part), otherwise mutating.

    A standard discretization of PSO for subset-selection problems; velocities
    become adoption probabilities.
    """
    parts = _parts_index(part_of, len(capacities))
    swarm = [random_feasible_solution(rng, part_of, capacities) for _ in range(particles)]
    values = [objective(s) for s in swarm]
    pbest = [list(s) for s in swarm]
    pbest_val = list(values)
    g = int(np.argmax(values))
    gbest, gbest_val = list(swarm[g]), values[g]
    history = [gbest_val]
    for _ in range(iterations):
        for i in range(particles):
            new: list[int] = []
            chosen: set[int] = set()
            for q, members in enumerate(parts):
                cap = min(capacities[q], len(members))
                own = [e for e in swarm[i] if part_of[e] == q]
                pb = [e for e in pbest[i] if part_of[e] == q]
                gb = [e for e in gbest if part_of[e] == q]
                slot_sources: list[int] = []
                for slot in range(cap):
                    r = rng.random()
                    if r < w_global and slot < len(gb):
                        pick = gb[slot]
                    elif r < w_global + w_personal and slot < len(pb):
                        pick = pb[slot]
                    elif slot < len(own):
                        pick = own[slot]
                    else:
                        pick = int(members[int(rng.integers(len(members)))])
                    slot_sources.append(pick)
                for pick in slot_sources:
                    if pick in chosen:  # resolve collisions with a random member
                        free = [int(e) for e in members if e not in chosen]
                        if not free:
                            continue
                        pick = free[int(rng.integers(len(free)))]
                    chosen.add(pick)
                    new.append(pick)
            val = objective(new)
            swarm[i] = new
            if val > pbest_val[i]:
                pbest[i], pbest_val[i] = list(new), val
                if val > gbest_val:
                    gbest, gbest_val = list(new), val
        history.append(gbest_val)
    return HeuristicResult(gbest, gbest_val, history)


def ant_colony(
    objective: Objective,
    part_of: Sequence[int],
    capacities: Sequence[int],
    rng: np.random.Generator,
    *,
    ants: int = 10,
    iterations: int = 40,
    evaporation: float = 0.1,
    deposit: float = 1.0,
) -> HeuristicResult:
    """Ant colony optimization with per-candidate pheromone trails.

    Each ant samples, per part, candidates with probability proportional to
    pheromone; the iteration-best ant reinforces its trail.
    """
    n = len(part_of)
    parts = _parts_index(part_of, len(capacities))
    pher = np.ones(n)
    best: list[int] = []
    best_val = -math.inf
    history: list[float] = []
    for _ in range(iterations):
        iter_best: list[int] = []
        iter_best_val = -math.inf
        for _ant in range(ants):
            sol: list[int] = []
            for q, members in enumerate(parts):
                k = min(capacities[q], len(members))
                if k == 0:
                    continue
                w = pher[members]
                probs = w / w.sum()
                picks = rng.choice(members, size=k, replace=False, p=probs)
                sol.extend(int(e) for e in picks)
            val = objective(sol)
            if val > iter_best_val:
                iter_best, iter_best_val = sol, val
        pher *= 1.0 - evaporation
        if iter_best:
            pher[iter_best] += deposit * (1.0 + max(iter_best_val, 0.0))
        if iter_best_val > best_val:
            best, best_val = list(iter_best), iter_best_val
        history.append(best_val)
    return HeuristicResult(best, best_val if best else 0.0, history)
