"""Swap local search refinement on top of the greedy (matroid-preserving).

The classical post-processing for matroid-constrained submodular
maximization: starting from a feasible solution (e.g. the Algorithm-3
greedy output), repeatedly look for a *swap* — drop one chosen element,
add one unchosen element of the same part — that strictly improves the
objective.  Each accepted swap keeps the solution independent, the value
is non-decreasing, and the loop terminates because the objective strictly
increases by at least *min_gain* per step.  In practice this recovers a
slice of the gap the 1/2-greedy leaves (``bench_ablation_local_search``).
"""

from __future__ import annotations

import numpy as np

from .matroid import PartitionMatroid
from .submodular import AdditivePowerObjective, GreedyResult

__all__ = ["local_search_refine"]


def local_search_refine(
    objective: AdditivePowerObjective,
    matroid: PartitionMatroid,
    initial: list[int],
    *,
    max_rounds: int = 10,
    min_gain: float = 1e-12,
) -> GreedyResult:
    """Improve *initial* by same-part swaps until no swap gains > *min_gain*.

    Returns the refined solution; its value is never below the initial's.
    """
    if not matroid.is_independent(initial):
        raise ValueError("initial solution is not independent in the matroid")
    n = objective.num_candidates
    part_of = np.asarray(matroid.part_of)
    chosen = list(initial)
    chosen_mask = np.zeros(n, dtype=bool)
    chosen_mask[chosen] = True
    current = objective.P[chosen].sum(axis=0) if chosen else np.zeros(objective.num_devices)
    value = objective.value_of_powers(current)
    evaluations = 0
    gains_hist: list[float] = []

    for _ in range(max_rounds):
        improved = False
        for pos in range(len(chosen)):
            e = chosen[pos]
            q = part_of[e]
            pool = np.nonzero((part_of == q) & ~chosen_mask)[0]
            if pool.size == 0:
                continue
            without = current - objective.P[e]
            # Value of swapping e -> each candidate of the same part, one broadcast.
            stacked = objective.device_utilities(without[None, :] + objective.P[pool])
            vals = stacked.sum(axis=1) * objective.scale
            evaluations += int(pool.size)
            k = int(np.argmax(vals))
            if vals[k] > value + min_gain:
                newcomer = int(pool[k])
                chosen_mask[e] = False
                chosen_mask[newcomer] = True
                chosen[pos] = newcomer
                current = without + objective.P[newcomer]
                gains_hist.append(float(vals[k] - value))
                value = float(vals[k])
                improved = True
        if not improved:
            break
    return GreedyResult(chosen, value, gains_hist, evaluations)
