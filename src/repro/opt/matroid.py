"""Matroids (Definitions 4.6/4.7 of the paper).

Only the independence oracle is needed by the greedy algorithm; we provide a
small hierarchy with :class:`PartitionMatroid` (the HIPO constraint — one
part per charger type with capacity ``N_q_s``) and :class:`UniformMatroid`.
Ground-set elements are integers (indices into a candidate list).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

__all__ = ["Matroid", "PartitionMatroid", "UniformMatroid"]


class Matroid(ABC):
    """Abstract matroid over ground set ``{0, .., n-1}``."""

    def __init__(self, ground_size: int):
        if ground_size < 0:
            raise ValueError("ground size must be non-negative")
        self.ground_size = ground_size

    @abstractmethod
    def is_independent(self, subset: Iterable[int]) -> bool:
        """Independence oracle."""

    @abstractmethod
    def can_extend(self, subset: Sequence[int], element: int) -> bool:
        """Whether ``subset + {element}`` stays independent.

        Must be equivalent to ``is_independent(set(subset) | {element})`` but
        may be faster with incremental bookkeeping by the caller.
        """

    def rank(self) -> int:
        """Size of a maximal independent set (default: brute greedy)."""
        chosen: list[int] = []
        for e in range(self.ground_size):
            if self.can_extend(chosen, e):
                chosen.append(e)
        return len(chosen)


class UniformMatroid(Matroid):
    """Independent sets are those of size at most *k*."""

    def __init__(self, ground_size: int, k: int):
        super().__init__(ground_size)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def is_independent(self, subset: Iterable[int]) -> bool:
        s = set(subset)
        return len(s) <= self.k and all(0 <= e < self.ground_size for e in s)

    def can_extend(self, subset: Sequence[int], element: int) -> bool:
        if not (0 <= element < self.ground_size) or element in subset:
            return False
        return len(subset) + 1 <= self.k

    def rank(self) -> int:
        return min(self.k, self.ground_size)


class PartitionMatroid(Matroid):
    """Ground set partitioned into parts; part *p* may contribute at most
    ``capacities[p]`` elements (Definition 4.7).

    Parameters
    ----------
    part_of:
        ``part_of[e]`` is the part index of ground element *e*.
    capacities:
        ``capacities[p]`` is the cap ``l_p`` of part *p*.
    """

    def __init__(self, part_of: Sequence[int], capacities: Sequence[int]):
        super().__init__(len(part_of))
        self.part_of = list(part_of)
        self.capacities = list(capacities)
        if any(c < 0 for c in self.capacities):
            raise ValueError("capacities must be non-negative")
        for p in self.part_of:
            if not (0 <= p < len(self.capacities)):
                raise ValueError(f"part index {p} out of range")

    @property
    def num_parts(self) -> int:
        return len(self.capacities)

    def is_independent(self, subset: Iterable[int]) -> bool:
        counts = [0] * self.num_parts
        seen: set[int] = set()
        for e in subset:
            if not (0 <= e < self.ground_size) or e in seen:
                return False
            seen.add(e)
            counts[self.part_of[e]] += 1
        return all(c <= cap for c, cap in zip(counts, self.capacities))

    def can_extend(self, subset: Sequence[int], element: int) -> bool:
        if not (0 <= element < self.ground_size) or element in subset:
            return False
        p = self.part_of[element]
        used = sum(1 for e in subset if self.part_of[e] == p)
        return used + 1 <= self.capacities[p]

    def rank(self) -> int:
        counts = [0] * self.num_parts
        for p in self.part_of:
            counts[p] += 1
        return sum(min(c, cap) for c, cap in zip(counts, self.capacities))
