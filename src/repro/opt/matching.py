"""Bipartite matching substrate for the charger redeployment problem (§8.1).

* :func:`hungarian` — Kuhn–Munkres assignment (minimum-cost perfect matching
  on a square cost matrix) in O(n^3), the algorithm the paper cites
  [43], [44] for minimizing overall switching overhead.
* :func:`hopcroft_karp` — maximum cardinality bipartite matching, used as the
  perfect-matching feasibility oracle in the min-max binary search (the
  paper invokes Hall's theorem [45]; a perfect matching exists iff the
  maximum matching saturates one side, which Hopcroft–Karp certifies in
  O(E sqrt(V))).
* :func:`has_perfect_matching` — that feasibility check for a boolean
  adjacency matrix.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["hungarian", "hopcroft_karp", "has_perfect_matching"]


def hungarian(cost: np.ndarray) -> tuple[np.ndarray, float]:
    """Minimum-cost perfect matching on square matrix *cost*.

    Returns ``(assignment, total)`` where ``assignment[i]`` is the column
    matched to row *i*.  Infinite entries encode forbidden pairs; if no
    finite perfect matching exists the returned total is ``inf``.

    Implementation: potentials + shortest augmenting path (the classical
    O(n^3) formulation with 1-based sentinel column).
    """
    c = np.asarray(cost, dtype=float)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ValueError("hungarian requires a square cost matrix")
    n = c.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int), 0.0
    INF = np.inf
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=int)  # p[j]: row matched to column j (1-based; 0 = none)
    way = np.zeros(n + 1, dtype=int)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = c[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if not np.isfinite(delta):
                # No augmenting path with finite cost: no finite perfect matching.
                return np.full(n, -1, dtype=int), float("inf")
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = np.full(n, -1, dtype=int)
    for j in range(1, n + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = float(sum(c[i, assignment[i]] for i in range(n)))
    return assignment, total


def hopcroft_karp(adjacency: np.ndarray) -> tuple[int, np.ndarray, np.ndarray]:
    """Maximum bipartite matching on a boolean (rows × cols) adjacency matrix.

    Returns ``(size, match_row, match_col)`` where ``match_row[i]`` is the
    column matched to row *i* (or ``-1``) and vice versa.
    """
    adj = np.asarray(adjacency, dtype=bool)
    n, m = adj.shape
    neighbors = [np.nonzero(adj[i])[0].tolist() for i in range(n)]
    match_row = np.full(n, -1, dtype=int)
    match_col = np.full(m, -1, dtype=int)
    INF = n + m + 1

    def bfs() -> bool:
        dist = np.full(n, INF, dtype=int)
        q: deque[int] = deque()
        for i in range(n):
            if match_row[i] == -1:
                dist[i] = 0
                q.append(i)
        found = False
        while q:
            i = q.popleft()
            for j in neighbors[i]:
                i2 = match_col[j]
                if i2 == -1:
                    found = True
                elif dist[i2] == INF:
                    dist[i2] = dist[i] + 1
                    q.append(i2)
        self_dist[:] = dist
        return found

    self_dist = np.full(n, INF, dtype=int)

    def dfs(i: int) -> bool:
        for j in neighbors[i]:
            i2 = match_col[j]
            if i2 == -1 or (self_dist[i2] == self_dist[i] + 1 and dfs(i2)):
                match_row[i] = j
                match_col[j] = i
                return True
        self_dist[i] = INF
        return False

    size = 0
    while bfs():
        for i in range(n):
            if match_row[i] == -1 and dfs(i):
                size += 1
    return size, match_row, match_col


def has_perfect_matching(adjacency: np.ndarray) -> bool:
    """Whether the bipartite graph has a matching saturating all rows.

    Equivalent to Hall's condition on the row side (Hall's theorem); checked
    constructively via Hopcroft–Karp.
    """
    adj = np.asarray(adjacency, dtype=bool)
    if adj.shape[0] > adj.shape[1]:
        return False
    size, _, _ = hopcroft_karp(adj)
    return size == adj.shape[0]
