#!/usr/bin/env python
"""Sec. 8 extensions: redeployment, deployment budgets, and fairness.

1. Solve HIPO for a morning topology and an evening topology of the same
   room; plan the charger transfer minimizing total and bottleneck
   switching overhead (Sec. 8.1, Hungarian + Hall/binary-search).
2. Re-solve under a deployment-cost budget (Sec. 8.2, cost-benefit greedy
   with TSP travel costs).
3. Compare the utilitarian objective against max-min (simulated annealing)
   and proportional fairness (Sec. 8.3).

Run:  python examples/redeployment_and_fairness.py
"""

import numpy as np

from repro import solve_hipo
from repro.core import build_candidate_set
from repro.extensions import (
    DeploymentCostModel,
    budgeted_placement,
    maxmin_placement,
    placement_cost,
    proportional_fair_placement,
    redeploy,
)
from repro.experiments import small_scenario


def by_type(strategies):
    out = {}
    for s in strategies:
        out.setdefault(s.ctype.name, []).append(s)
    return out


def main() -> None:
    rng = np.random.default_rng(1)
    morning = small_scenario(rng, num_devices=10)
    evening = morning.with_devices(small_scenario(rng, num_devices=10).devices)

    sol_m = solve_hipo(morning)
    sol_e = solve_hipo(evening)
    print(f"morning utility {sol_m.utility:.4f}, evening utility {sol_e.utility:.4f}")

    # --- Sec. 8.1: redeployment -----------------------------------------
    old, new = by_type(sol_m.strategies), by_type(sol_e.strategies)
    common = {k for k in old if k in new and len(old[k]) == len(new[k])}
    old = {k: old[k] for k in common}
    new = {k: new[k] for k in common}
    if common:
        t_plan = redeploy(old, new, objective="total")
        m_plan = redeploy(old, new, objective="max")
        print("\nSec 8.1 — redeployment overhead (distance + rotation):")
        print(f"  min-total : total={t_plan.total_overhead:7.2f}  max={t_plan.max_overhead:6.2f}")
        print(f"  min-max   : total={m_plan.total_overhead:7.2f}  max={m_plan.max_overhead:6.2f}")

    # --- Sec. 8.2: deployment budget -------------------------------------
    candidates = build_candidate_set(evening)
    model = DeploymentCostModel(base=(0.0, 0.0), power_of_type={"charger-1": 1.0, "charger-2": 2.0, "charger-3": 3.0})
    print("\nSec 8.2 — budgeted deployment (cost-benefit greedy):")
    for budget in (20.0, 60.0, 200.0):
        sol = budgeted_placement(evening, candidates, budget, cost_model=model)
        tour_cost = placement_cost(sol.strategies, model)
        print(
            f"  budget {budget:6.1f} -> {len(sol.strategies)} chargers, "
            f"utility {sol.utility:.4f}, tour-based cost {tour_cost:.1f}"
        )

    # --- Sec. 8.3: fairness ----------------------------------------------
    print("\nSec 8.3 — fairness objectives on the evening topology:")
    util = solve_hipo(evening)
    u_vec = evening.evaluator().total_power(util.strategies)
    u_util = np.minimum(1.0, u_vec / evening.evaluator().thresholds)
    print(
        f"  utilitarian (Alg. 3)  mean={u_util.mean():.4f}  min={u_util.min():.4f}"
    )
    mm = maxmin_placement(evening, candidates, np.random.default_rng(0), method="sa", iterations=800)
    print(f"  max-min (SA)          mean={mm.mean_utility:.4f}  min={mm.min_utility:.4f}")
    pf = proportional_fair_placement(evening, candidates)
    print(f"  proportional (log)    mean={pf.mean_utility:.4f}  min={pf.min_utility:.4f}")


if __name__ == "__main__":
    main()
