#!/usr/bin/env python
"""Warehouse scenario: charger placement among shelving racks.

The paper's introduction motivates charger placement for sensor fleets in
cluttered indoor spaces.  This example builds a 50 m x 30 m warehouse whose
shelving racks are obstacles, scatters battery-free inventory sensors along
the racks (they face the aisles), and compares HIPO against the strongest
grid baseline and pure random placement.

Run:  python examples/warehouse_deployment.py
"""

import math

import numpy as np

from repro.baselines import run_algorithm
from repro.experiments import (
    default_charger_types,
    default_coefficients,
    default_device_types,
    render_scene,
)
from repro.geometry import rectangle
from repro.model import Device, Scenario


def build_warehouse() -> Scenario:
    bounds = (0.0, 0.0, 50.0, 30.0)
    # Three rows of shelving racks with aisles between them.
    racks = [
        rectangle(8.0, 6.0 + row * 8.0, 42.0, 8.0 + row * 8.0) for row in range(3)
    ]
    dtypes = default_device_types()
    devices = []
    rng = np.random.default_rng(2024)
    # Sensors sit on rack faces, looking into the aisle (north or south).
    for row in range(3):
        y_low = 6.0 + row * 8.0
        y_high = 8.0 + row * 8.0
        for k in range(8):
            x = 10.0 + k * 4.0
            # South face sensor looks south; north face looks north.
            devices.append(
                Device((x, y_low - 0.3), 3.0 * math.pi / 2.0, dtypes[k % 4], 0.05)
            )
            devices.append(Device((x, y_high + 0.3), math.pi / 2.0, dtypes[(k + 1) % 4], 0.05))
    return Scenario(
        bounds=bounds,
        devices=tuple(devices),
        obstacles=tuple(racks),
        charger_types=tuple(default_charger_types()),
        budgets={"charger-1": 4, "charger-2": 6, "charger-3": 8},
        table=default_coefficients(),
    )


def main() -> None:
    scenario = build_warehouse()
    print(
        f"Warehouse: {scenario.num_devices} rack sensors, "
        f"{scenario.num_chargers} chargers, {len(scenario.obstacles)} shelving racks\n"
    )
    results = {}
    for name in ("HIPO", "GPPDCS Triangle", "RPAR"):
        strategies = run_algorithm(name, scenario, np.random.default_rng(0))
        u = scenario.utility_of(strategies)
        results[name] = (u, strategies)
        print(f"{name:<18} charging utility = {u:.4f}")

    ev = scenario.evaluator()
    hipo_powers = ev.total_power(results["HIPO"][1])
    uncharged = int((hipo_powers <= 0).sum())
    print(f"\nHIPO leaves {uncharged} of {scenario.num_devices} sensors uncharged")
    print("\nHIPO placement (racks are #, sensors o):")
    print(render_scene(scenario, results["HIPO"][1], width=76, height=24))


if __name__ == "__main__":
    main()
