#!/usr/bin/env python
"""Fig. 10 gallery: one topology, all nine algorithms.

Reproduces the instance comparison of Sec. 6.1.1: the same random topology
(with chargers at 4x the initial cardinalities) is solved by HIPO and all
eight baselines; the paper reports utilities 0.8495 (HIPO) down to 0.1000
(RPAR).  Expect the same ordering, with HIPO charging all or nearly all
devices while randomized placements leave many dark.

Run:  python examples/instance_gallery.py [seed]
"""

import sys

from repro.experiments import fig10_instance, render_scene


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    result = fig10_instance(seed=seed)

    print("Fig. 10 — charging utilities on one instance (4x chargers):\n")
    print(result.format())

    ev = result.scenario.evaluator()
    print("\nuncharged devices per algorithm:")
    for name, strategies in result.placements.items():
        powers = ev.total_power(strategies)
        print(f"  {name:<18} {int((powers <= 0).sum()):2d} of {result.scenario.num_devices}")

    for name in ("HIPO", "RPAR"):
        print(f"\n{name} placement:")
        print(render_scene(result.scenario, result.placements[name]))


if __name__ == "__main__":
    main()
