#!/usr/bin/env python
"""Reproduce the paper's field experiment (Sec. 7, Figs. 24-26) in simulation.

The testbed: a 120 cm x 120 cm arena, three obstacles, ten P2110-equipped
sensor nodes at the exact strategies printed in the paper, and six chargers
(one TB 1 W, two TB 2 W, three TX91501 3 W).  We place the chargers with
HIPO, GPPDCS Triangle and GPAD Triangle and report per-device charging
utility (Fig. 25) and the CDF of received power (Fig. 26).

Run:  python examples/field_testbed.py
"""

import numpy as np

from repro.experiments import cdf_points, field_comparison, field_scenario, render_scene


def main() -> None:
    scenario = field_scenario()
    print("Arena (o sensors, # obstacles):")
    print(render_scene(scenario, width=48, height=20))

    result = field_comparison()

    print("\nFig. 25 — charging utility per device:")
    print(result.format())

    print("\nDevices left uncharged:")
    for name, u in result.utilities.items():
        print(f"  {name:<18} {int((u <= 0).sum())} of {len(u)}")

    print("\nFig. 26 — CDF of received charging power (mW):")
    for name, p in result.powers.items():
        values, frac = cdf_points(p)
        pairs = ", ".join(f"({v:.1f}, {f:.1f})" for v, f in zip(values, frac))
        print(f"  {name:<18} {pairs}")

    print("\nHIPO charger placement:")
    print(render_scene(scenario, result.placements["HIPO"], width=48, height=20))


if __name__ == "__main__":
    main()
