#!/usr/bin/env python
"""Distributed PDCS extraction (Sec. 5): tasks, LPT, real process pool.

Demonstrates the three layers of the distributed extractor:

1. task decomposition — one candidate-extraction task per device over its
   2*dmax neighbour set (Algorithm 4);
2. simulated cluster — measure each task's serial cost once, assign with
   LPT, report the makespan for several machine counts (Fig. 12's metric);
3. real parallelism — run the same tasks on a local ProcessPoolExecutor and
   check the union of candidates matches the serial extraction.

Run:  python examples/distributed_extraction.py
"""

import os
import time

import numpy as np

from repro.core import (
    CandidateGenerator,
    assign_tasks,
    measure_task_costs,
    parallel_positions_by_type,
)
from repro.experiments import random_scenario


def main() -> None:
    scenario = random_scenario(np.random.default_rng(9), device_multiple=2)
    print(f"{scenario.num_devices} devices -> {scenario.num_devices} extraction tasks\n")

    # 1 + 2: measure serial task costs and simulate the cluster.
    meas = measure_task_costs(scenario)
    print(f"serial extraction: {meas.serial_total * 1e3:.1f} ms total")
    print(f"{'machines':>9} {'LPT makespan (ms)':>18} {'speedup':>8}")
    for m in (1, 2, 5, 10, 20):
        span = assign_tasks(meas.durations, m).makespan
        print(f"{m:>9d} {span * 1e3:>18.1f} {meas.serial_total / max(span, 1e-12):>8.2f}x")

    # 3: real process pool (workers capped by this machine's cores).
    workers = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    parallel = parallel_positions_by_type(scenario, workers=workers)
    wall = time.perf_counter() - t0
    print(f"\nprocess pool ({workers} workers): {wall * 1e3:.1f} ms wall clock")

    gen = CandidateGenerator(scenario)
    for ct in scenario.charger_types:
        serial_pts = {tuple(np.round(p, 6)) for p in gen.positions(ct)}
        par_pts = {tuple(np.round(p, 6)) for p in parallel[ct.name]}
        status = "match" if serial_pts == par_pts else "MISMATCH"
        print(f"  {ct.name}: {len(par_pts)} candidate positions ({status} with serial)")


if __name__ == "__main__":
    main()
