#!/usr/bin/env python
"""Clutter + imprecision: a stress scenario beyond the paper's uniform setup.

Builds a clutter-heavy instance (random star/convex obstacles, clustered
devices), validates it, solves it with HIPO, analyses the placement, and
measures how the utility survives installer imprecision.

Run:  python examples/cluttered_robustness.py [seed]
"""

import sys

import numpy as np

from repro import solve_hipo
from repro.experiments import (
    cluttered_scenario,
    placement_metrics,
    placement_robustness,
    render_scene,
)
from repro.model import validate_scenario


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    rng = np.random.default_rng(seed)
    scenario = cluttered_scenario(rng, num_obstacles=4, clusters=3, per_cluster=6)

    print(
        f"Cluttered instance: {scenario.num_devices} devices in 3 clusters, "
        f"{len(scenario.obstacles)} random obstacles, {scenario.num_chargers} chargers"
    )
    report = validate_scenario(scenario)
    print(f"validation: {report.format()}\n")

    solution = solve_hipo(scenario)
    metrics = placement_metrics(scenario, solution.strategies)
    print("HIPO placement metrics:")
    print(metrics.format())

    print("\nScene (o devices, # obstacles, arrows chargers):")
    print(render_scene(scenario, solution.strategies))

    print("\nRobustness under deployment imprecision (position sigma in metres):")
    curve = placement_robustness(
        scenario, solution.strategies, np.random.default_rng(0), sigmas=(0.25, 0.5, 1.0, 2.0), trials=15
    )
    print(curve.format())


if __name__ == "__main__":
    main()
