#!/usr/bin/env python
"""Quickstart: solve one HIPO instance end to end.

Builds a 40 m x 40 m scenario with the paper's default hardware tables
(Tables 2-4), two obstacles and 40 heterogeneous devices; runs the full HIPO
pipeline (area discretization -> PDCS extraction -> submodular greedy) and
prints the chosen charger strategies, the achieved charging utility, and an
ASCII map of the placement.

Run:  python examples/quickstart.py [seed]
"""

import sys
import time

import numpy as np

from repro import solve_hipo
from repro.experiments import random_scenario, render_scene


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = np.random.default_rng(seed)

    scenario = random_scenario(rng)  # 40 devices, budgets (3, 6, 9), eps=0.15
    print(
        f"Scenario: {scenario.num_devices} devices, "
        f"{scenario.num_chargers} chargers of {len(scenario.charger_types)} types, "
        f"{len(scenario.obstacles)} obstacles"
    )

    t0 = time.perf_counter()
    solution = solve_hipo(scenario, keep_candidates=True)
    elapsed = time.perf_counter() - t0

    print(f"\nSolved in {elapsed:.2f}s")
    print(f"  candidate strategies : {solution.candidate_set.num_candidates}")
    print(f"  charging utility     : {solution.utility:.4f} (exact, Eq. 4)")
    print(f"  approximated utility : {solution.approx_utility:.4f} (what the greedy maximized)")

    print("\nSelected strategies (type, position, orientation):")
    for s in solution.strategies:
        print(
            f"  {s.ctype.name:<10} ({s.position[0]:6.2f}, {s.position[1]:6.2f})"
            f"  {np.degrees(s.orientation):6.1f} deg"
        )

    print("\nPlacement map (o device, # obstacle, arrows are chargers):")
    print(render_scene(scenario, solution.strategies))


if __name__ == "__main__":
    main()
